// Buffersweep explores the paper's counter-intuitive headline result on a
// randomly generated workload: larger virtual-channel buffers give
// *worse* guaranteed schedulability under the buffer-aware IBN analysis,
// converging to the XLWX bound as buffers grow.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"wormnoc"
)

func main() {
	topo, err := wormnoc.NewMesh(4, 4, wormnoc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A reproducible random workload dense enough to exhibit MPB chains.
	const numFlows = 340
	rng := rand.New(rand.NewSource(42))
	flows := make([]wormnoc.Flow, numFlows)
	for i := range flows {
		src := wormnoc.NodeID(rng.Intn(16))
		dst := wormnoc.NodeID(rng.Intn(15))
		if dst >= src {
			dst++
		}
		period := wormnoc.Cycles(4_000 + rng.Int63n(4_000_000))
		flows[i] = wormnoc.Flow{
			Name: fmt.Sprintf("f%d", i), Period: period, Deadline: period,
			Length: 128 + rng.Intn(3969), Src: src, Dst: dst,
		}
	}
	// Rate-monotonic priorities: shorter period = higher priority.
	order := make([]int, numFlows)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return flows[order[a]].Period < flows[order[b]].Period })
	for rank, i := range order {
		flows[i].Priority = rank + 1
	}
	sys, err := wormnoc.NewSystem(topo, flows)
	if err != nil {
		log.Fatal(err)
	}
	sets := wormnoc.BuildSets(sys)

	xlwx, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.XLWX})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d flows on a 4x4 mesh; per-flow schedulability under IBN by buffer depth\n\n", numFlows)
	fmt.Printf("%8s %14s %18s %14s\n", "buf", "schedulable", "Σ bound inflation", "set verdict")
	for _, buf := range []int{1, 2, 4, 8, 16, 32, 64, 100} {
		res, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{
			Method: wormnoc.IBN, BufDepth: buf,
		})
		if err != nil {
			log.Fatal(err)
		}
		sched := 0
		var inflation wormnoc.Cycles
		for i := range flows {
			if res.Flows[i].Status == wormnoc.Schedulable {
				sched++
				inflation += res.R(i) - sys.C(i)
			}
		}
		verdict := "NOT schedulable"
		if res.Schedulable {
			verdict = "SCHEDULABLE"
		}
		fmt.Printf("%8d %10d/%d %18d %14s\n", buf, sched, numFlows, inflation, verdict)
	}

	schedX := 0
	for i := range flows {
		if xlwx.Flows[i].Status == wormnoc.Schedulable {
			schedX++
		}
	}
	fmt.Printf("%8s %10d/%d %18s %14s\n", "XLWX", schedX, numFlows, "-", verdictOf(xlwx))
	fmt.Println("\nSmaller buffers bound the interference a blocked packet can replay")
	fmt.Println("(bi = buf·linkl·|cd|, Eq. 6), so they tighten every IBN bound; as buf")
	fmt.Println("grows, min(bi, Ck+Idown) saturates and IBN converges to XLWX.")
}

func verdictOf(r *wormnoc.AnalysisResult) string {
	if r.Schedulable {
		return "SCHEDULABLE"
	}
	return "NOT schedulable"
}
