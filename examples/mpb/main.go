// MPB walk-through: constructs the paper's Section V scenario from
// scratch through the public API, explains where multi-point progressive
// blocking comes from, and shows how the three analyses and the simulator
// see it — including the unsafety of the SB bound and the effect of the
// buffer depth on the IBN bound.
package main

import (
	"fmt"
	"log"

	"wormnoc"
)

// buildExample assembles Figure 3's network and Table I's flows for a
// given per-VC buffer depth: a six-router line a..f with
//
//	τ1 (P1): e→f — short, fast, hits τ2 downstream of τ3's links
//	τ2 (P2): a→f — long packets crossing the whole line
//	τ3 (P3): b→e — the analysed flow, sharing 3 links with τ2
func buildExample(bufDepth int) *wormnoc.System {
	topo, err := wormnoc.NewMesh(6, 1, wormnoc.RouterConfig{
		BufDepth:     bufDepth,
		LinkLatency:  1,
		RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	const (
		a = wormnoc.NodeID(0)
		b = wormnoc.NodeID(1)
		e = wormnoc.NodeID(4)
		f = wormnoc.NodeID(5)
	)
	sys, err := wormnoc.NewSystem(topo, []wormnoc.Flow{
		{Name: "τ1", Priority: 1, Period: 200, Deadline: 200, Length: 60, Src: e, Dst: f},
		{Name: "τ2", Priority: 2, Period: 4000, Deadline: 4000, Length: 198, Src: a, Dst: f},
		{Name: "τ3", Priority: 3, Period: 6000, Deadline: 6000, Length: 128, Src: b, Dst: e},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	fmt.Println(`Multi-point progressive blocking (MPB), step by step:
 1. τ2 (a→f) wins the links it shares with τ3 (b→e) and blocks τ3.
 2. τ1 (e→f) preempts τ2 on link r5→r6 — DOWNSTREAM of the τ2/τ3 links.
 3. Backpressure freezes τ2's flits in the VC buffers along its route;
    with no credit, τ2 yields the shared links and τ3 advances.
 4. When τ1 finishes, τ2's BUFFERED flits drain first — and block τ3
    AGAIN. One packet of τ2 interferes with τ3 more than once.
The replayed interference per hit of τ1 is bounded by the buffered flits
inside the τ2/τ3 contention domain: bi = buf · linkl · |cd| (Eq. 6).`)

	sys := buildExample(2)
	sets := wormnoc.BuildSets(sys)
	fmt.Printf("\ncontention domain τ3∩τ2: %d links; τ2∩τ1: %d links (downstream); τ3∩τ1: %d links\n",
		len(sets.CD(2, 1)), len(sets.CD(1, 0)), len(sets.CD(2, 0)))
	fmt.Printf("S^down of τ2 w.r.t. τ3: flows %v (τ1 triggers MPB)\n", sets.Downstream(2, 1))

	fmt.Printf("\n%-10s %8s %8s %8s %10s\n", "analysis", "R(τ1)", "R(τ2)", "R(τ3)", "buffers")
	for _, cfg := range []struct {
		name string
		buf  int
		opt  wormnoc.AnalysisOptions
	}{
		{"SB", 2, wormnoc.AnalysisOptions{Method: wormnoc.SB}},
		{"XLWX", 2, wormnoc.AnalysisOptions{Method: wormnoc.XLWX}},
		{"IBN", 10, wormnoc.AnalysisOptions{Method: wormnoc.IBN}},
		{"IBN", 2, wormnoc.AnalysisOptions{Method: wormnoc.IBN}},
	} {
		s := buildExample(cfg.buf)
		res, err := wormnoc.Analyze(s, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %8d %8d %10d\n", cfg.name, res.R(0), res.R(1), res.R(2), cfg.buf)
	}

	fmt.Println("\nsimulated worst case over all 200 phasings of τ1:")
	for _, buf := range []int{10, 2} {
		s := buildExample(buf)
		sweep, err := wormnoc.SweepOffsets(s, wormnoc.SimConfig{Duration: 20_000}, 0, 200, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  buf=%-3d observed R(τ3) = %d  (worst phasing: τ1 offset %d)\n",
			buf, sweep.Worst[2], sweep.WorstOffset[2])
	}

	fmt.Println(`
Reading the numbers:
 - SB's 336 is OPTIMISTIC: the simulator observes ~350 at buf=10.
 - XLWX's 460 is safe but pessimistic: it charges τ3 the whole downstream
   interference τ2 can suffer (2 hits × C₁ = 124 extra cycles).
 - IBN charges only what the buffers can replay: 2 hits × min(bi, C₁),
   i.e. 2·6 = 12 extra cycles at buf=2 — and smaller buffers give tighter
   bounds (348 vs 396), the paper's counter-intuitive headline.`)
}
