module wormnoc

go 1.24
