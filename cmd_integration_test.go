package wormnoc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Command-level integration tests: each cmd/ binary is built once and
// driven with small inputs, asserting the key lines of its output.
// Skipped under -short (building binaries is the slow part).

var (
	binDirOnce sync.Once
	binDir     string
	binErr     error
)

func buildCmd(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("binary builds skipped in -short mode")
	}
	binDirOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "wormnoc-bin")
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	bin := filepath.Join(binDir, name)
	if _, err := os.Stat(bin); err == nil {
		return bin
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v\n%s", bin, err, out)
	}
	return string(out), code
}

func TestCmdDidactic(t *testing.T) {
	bin := buildCmd(t, "didactic")
	out, code := run(t, bin, "", "-maxoffset", "200", "-step", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"Table I", "Table II",
		"336", "460", "396", "348", // the τ3 analysis row
		"MPB demonstrated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAnalyze(t *testing.T) {
	bin := buildCmd(t, "analyze")
	example, code := run(t, bin, "", "-example")
	if code != 0 {
		t.Fatalf("-example failed: %s", example)
	}
	out, code := run(t, bin, example, "-all", "-explain", "τ3")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"R_SB", "R_XLWX", "R_IBN", "460", "348", "bi cap 6", "SCHEDULABLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// An unschedulable set exits with code 2.
	unsched := `{"mesh":{"width":4,"height":1,"buf":2,"linkl":1,"routl":0},"flows":[
	 {"name":"hog","priority":1,"period":100,"deadline":100,"length":80,"src":0,"dst":3},
	 {"name":"meek","priority":2,"period":400,"deadline":90,"length":10,"src":0,"dst":3}]}`
	out, code = run(t, bin, unsched, "-method", "IBN")
	if code != 2 || !strings.Contains(out, "NOT schedulable") {
		t.Errorf("unschedulable set: exit %d\n%s", code, out)
	}
	// Unknown method is rejected up front with usage and the flag-error
	// exit status, even before any input is read.
	out, code = run(t, bin, "", "-method", "BOGUS")
	if code != 2 || !strings.Contains(out, "unknown analysis method") || !strings.Contains(out, "Usage") {
		t.Errorf("bogus method: exit %d\n%s", code, out)
	}
}

func TestCmdSweep(t *testing.T) {
	bin := buildCmd(t, "sweep")
	out, code := run(t, bin, "", "-mesh", "3x3", "-flows", "40", "-sets", "3", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"3x3 mesh", "SB", "XLWX", "IBN2", "IBN100", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out, code = run(t, bin, "", "-mesh", "3x3", "-flows", "60", "-sets", "2", "-tightness")
	if code != 0 || !strings.Contains(out, "tightness") {
		t.Errorf("tightness mode: exit %d\n%s", code, out)
	}
	_, code = run(t, bin, "", "-mesh", "bogus")
	if code != 1 {
		t.Errorf("bad mesh: exit %d", code)
	}
	// A bad -variant fails with usage even in modes that never consult
	// it (it used to be silently ignored with -buffers).
	out, code = run(t, bin, "", "-buffers", "-variant", "bogus")
	if code != 2 || !strings.Contains(out, "unknown -variant") || !strings.Contains(out, "Usage") {
		t.Errorf("bogus variant: exit %d\n%s", code, out)
	}
}

func TestCmdAVBench(t *testing.T) {
	bin := buildCmd(t, "avbench")
	out, code := run(t, bin, "", "-mappings", "3", "-topos", "2x2,3x3", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"2x2", "3x3", "XLWX", "IBN2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out, code = run(t, bin, "", "-optimize", "-topos", "3x3", "-iters", "60", "-seed", "2")
	if code != 0 || !strings.Contains(out, "optimisation") {
		t.Errorf("optimize mode: exit %d\n%s", code, out)
	}
}

func TestCmdNocsim(t *testing.T) {
	analyze := buildCmd(t, "analyze")
	example, _ := run(t, analyze, "", "-example")
	bin := buildCmd(t, "nocsim")
	out, code := run(t, bin, example, "-duration", "8000", "-gantt", "-gantt-to", "400")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"simulated 8000 cycles", "legend:", "R_IBN", "τ3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Offset sweep mode.
	out, code = run(t, bin, example, "-duration", "8000", "-sweep", "0", "-maxoffset", "40", "-step", "8")
	if code != 0 || !strings.Contains(out, "offset sweep: 5 runs") {
		t.Errorf("sweep mode: exit %d\n%s", code, out)
	}
}

func TestCmdNocfuzz(t *testing.T) {
	bin := buildCmd(t, "nocfuzz")
	// A healthy tree: a small run finds no violations and exits 0.
	out, code := run(t, bin, "", "run", "-n", "6", "-seed", "3", "-out", t.TempDir())
	if code != 0 || !strings.Contains(out, "0 violations") {
		t.Errorf("run mode: exit %d\n%s", code, out)
	}
	// Corpus mode emits go-fuzz seed files.
	corpusDir := t.TempDir()
	out, code = run(t, bin, "", "corpus", "-n", "2", "-seed", "5", "-out", corpusDir)
	if code != 0 {
		t.Fatalf("corpus mode: exit %d\n%s", code, out)
	}
	raw, err := os.ReadFile(filepath.Join(corpusDir, "nocfuzz-0000"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "go test fuzz v1\nint64(") {
		t.Errorf("corpus file is not a go-fuzz seed: %q", raw)
	}
	// Replaying an artifact whose recorded violation does not reproduce
	// (a healthy scenario with a fabricated breach) exits 0.
	artifact := `{
	  "version": 1,
	  "seed": 0,
	  "scenario": {
	    "mesh": {"width": 3, "height": 1, "buf": 2, "linkl": 1, "routl": 0},
	    "flows": [
	      {"name": "a", "priority": 1, "period": 1000, "deadline": 1000, "length": 8, "src": 0, "dst": 2},
	      {"name": "b", "priority": 2, "period": 2000, "deadline": 2000, "length": 8, "src": 1, "dst": 2}
	    ]
	  },
	  "check": {"seed": 1, "duration": 8000, "restarts": 1, "refine_steps": 1, "probes_per_flow": 2},
	  "violation": {"class": "unsound", "invariant": "sim<=IBN", "method": "IBN", "flow": 0, "bound": 1, "observed": 2}
	}`
	artPath := filepath.Join(t.TempDir(), "ce.json")
	if err := os.WriteFile(artPath, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, bin, "", "replay", "-in", artPath)
	if code != 0 || !strings.Contains(out, "not reproduced") {
		t.Errorf("replay mode: exit %d\n%s", code, out)
	}
	// Malformed artifacts and unknown commands fail with exit 1.
	if err := os.WriteFile(artPath, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code = run(t, bin, "", "replay", "-in", artPath); code != 1 {
		t.Errorf("bad artifact: exit %d", code)
	}
	if out, code = run(t, bin, "", "bogus"); code != 1 || !strings.Contains(out, "usage") {
		t.Errorf("unknown command: exit %d\n%s", code, out)
	}
}

func TestCmdTopo(t *testing.T) {
	bin := buildCmd(t, "topo")
	out, code := run(t, bin, "", "-mesh", "3x2", "-route", "0:5")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"mesh 3x2", "[r0]", "route(0, 5): 5 links"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out, code = run(t, bin, "", "-mesh", "2x2", "-dot")
	if code != 0 || !strings.HasPrefix(out, "digraph mesh {") {
		t.Errorf("dot mode: exit %d\n%s", code, out)
	}
	out, code = run(t, bin, "", "-mesh", "3x2", "-route", "0:5", "-routing", "yx")
	if code != 0 || !strings.Contains(out, "YX") {
		t.Errorf("yx mode: exit %d\n%s", code, out)
	}
}
