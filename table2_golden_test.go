package wormnoc_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// table2Golden mirrors testdata/table2_golden.json: Table II pinned to
// exact values, analysis and simulation columns both.
type table2Golden struct {
	Comment        string `json:"comment"`
	Duration       int64  `json:"duration"`
	SweepFlow      int    `json:"sweep_flow"`
	SweepMaxOffset int64  `json:"sweep_max_offset"`
	SweepStep      int64  `json:"sweep_step"`
	Buffers        []struct {
		Buf      int                `json:"buf"`
		Analysis map[string][]int64 `json:"analysis"`
		SimWorst []int64            `json:"sim_worst"`
	} `json:"buffers"`
}

func loadTable2Golden(t *testing.T) *table2Golden {
	t.Helper()
	raw, err := os.ReadFile("testdata/table2_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var g table2Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

// TestTableIIGoldenAnalysis pins the analysis columns of Table II: every
// registered method's bounds for the didactic scenario at both tabulated
// buffer depths. The golden file is the regression baseline — a diff
// here means the reproduced equations changed behaviour.
func TestTableIIGoldenAnalysis(t *testing.T) {
	g := loadTable2Golden(t)
	for _, row := range g.Buffers {
		sys := workload.Didactic(row.Buf)
		if len(row.Analysis) != len(core.Methods()) {
			t.Errorf("buf=%d: golden file pins %d methods, registry has %d — re-pin the file",
				row.Buf, len(row.Analysis), len(core.Methods()))
		}
		for _, m := range core.Methods() {
			want, ok := row.Analysis[m.String()]
			if !ok {
				t.Errorf("buf=%d: method %s missing from the golden file", row.Buf, m)
				continue
			}
			res, err := core.Analyze(sys, core.Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int64, len(res.Flows))
			for i, fr := range res.Flows {
				if fr.Status != core.Schedulable {
					t.Errorf("buf=%d %s flow %d: status %v, golden rows are all schedulable", row.Buf, m, i, fr.Status)
				}
				got[i] = int64(fr.R)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("buf=%d %s: bounds %v, golden %v", row.Buf, m, got, want)
			}
		}
	}
}

// TestTableIIGoldenSimulation pins the simulation columns: the exact
// worst latencies the deterministic offset sweep observes. These embody
// the paper's headline (at buf=10 the observed τ3 latency of 350 exceeds
// the unsafe SB bound of 336 while staying under IBN's 396), so the
// relationships are asserted alongside the raw values.
func TestTableIIGoldenSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("offset sweep is slow in -short mode")
	}
	g := loadTable2Golden(t)
	for _, row := range g.Buffers {
		sys := workload.Didactic(row.Buf)
		sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: noc.Cycles(g.Duration)},
			g.SweepFlow, noc.Cycles(g.SweepMaxOffset), noc.Cycles(g.SweepStep))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int64, len(sweep.Worst))
		for i, w := range sweep.Worst {
			got[i] = int64(w)
		}
		if fmt.Sprint(got) != fmt.Sprint(row.SimWorst) {
			t.Errorf("buf=%d: sim worst %v, golden %v", row.Buf, got, row.SimWorst)
		}
		for i := range got {
			if ibn := row.Analysis["IBN"]; got[i] > ibn[i] {
				t.Errorf("buf=%d flow %d: observed %d exceeds IBN bound %d", row.Buf, i, got[i], ibn[i])
			}
		}
		if row.Buf == 10 {
			if sb := row.Analysis["SB"]; got[2] <= sb[2] {
				t.Errorf("buf=10: observed τ3 latency %d does not exceed the SB bound %d; MPB not reproduced", got[2], sb[2])
			}
		}
	}
}
