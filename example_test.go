package wormnoc_test

import (
	"fmt"
	"log"

	"wormnoc"
)

// didacticSystem builds the paper's Section V example (Figure 3 /
// Table I): three flows on a six-router line.
func didacticSystem(bufDepth int) *wormnoc.System {
	topo, err := wormnoc.NewMesh(6, 1, wormnoc.RouterConfig{
		BufDepth: bufDepth, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := wormnoc.NewSystem(topo, []wormnoc.Flow{
		{Name: "τ1", Priority: 1, Period: 200, Deadline: 200, Length: 60, Src: 4, Dst: 5},
		{Name: "τ2", Priority: 2, Period: 4000, Deadline: 4000, Length: 198, Src: 0, Dst: 5},
		{Name: "τ3", Priority: 3, Period: 6000, Deadline: 6000, Length: 128, Src: 1, Dst: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// The worst-case latency bounds of the paper's didactic example under
// the three analyses (Table II, analytic columns).
func ExampleAnalyze() {
	sys := didacticSystem(2)
	for _, m := range []wormnoc.Method{wormnoc.SB, wormnoc.XLWX, wormnoc.IBN} {
		res, err := wormnoc.Analyze(sys, wormnoc.AnalysisOptions{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v R(τ3) = %d\n", m, res.R(2))
	}
	// Output:
	// SB   R(τ3) = 336
	// XLWX R(τ3) = 460
	// IBN  R(τ3) = 348
}

// Equation 1 of the paper: the zero-load latency of τ2 (198 flits over a
// 7-link route with single-cycle links and combinational routing).
func ExampleZeroLoadLatency() {
	cfg := wormnoc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0}
	fmt.Println(wormnoc.ZeroLoadLatency(cfg, 7, 198))
	// Output:
	// 204
}

// Observing actual latencies with the cycle-accurate simulator: without
// contention a packet achieves exactly its zero-load latency.
func ExampleSimulate() {
	sys := didacticSystem(2)
	// Delay τ1 and τ3 out of the horizon so only τ2 runs.
	res, err := wormnoc.Simulate(sys, wormnoc.SimConfig{
		Duration:          5000,
		Offsets:           []wormnoc.Cycles{9999, 0, 9998},
		MaxPacketsPerFlow: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d, C = %d\n", res.WorstLatency[1], sys.C(1))
	// Output:
	// observed 204, C = 204
}

// Decomposing a bound term by term: the MPB replay that IBN charges τ3
// is capped by the contention domain's buffer capacity (Equation 6).
func ExampleExplain() {
	sys := didacticSystem(2)
	sets := wormnoc.BuildSets(sys)
	b, err := wormnoc.Explain(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.IBN}, 2)
	if err != nil {
		log.Fatal(err)
	}
	t := b.Terms[0]
	fmt.Printf("R = %d: C %d + %d hit × (C₂ %d + replay %d ≤ bi %d)\n",
		b.R, b.C, t.Hits, t.Cj, t.IDown, 2*t.BufferedInterference)
	// Output:
	// R = 348: C 132 + 1 hit × (C₂ 204 + replay 12 ≤ bi 12)
}

// Interference sets of the didactic example: τ1 interferes with τ3 only
// indirectly, downstream of the τ2/τ3 contention domain — the MPB
// geometry.
func ExampleBuildSets() {
	sys := didacticSystem(2)
	sets := wormnoc.BuildSets(sys)
	fmt.Println("S^D(τ3):", sets.Direct(2))
	fmt.Println("S^I(τ3):", sets.Indirect(2))
	fmt.Println("downstream via τ2:", sets.Downstream(2, 1))
	fmt.Println("|cd(τ3,τ2)|:", len(sets.CD(2, 1)))
	// Output:
	// S^D(τ3): [1]
	// S^I(τ3): [0]
	// downstream via τ2: [0]
	// |cd(τ3,τ2)|: 3
}

// Rate-monotonic priority assignment (the paper's policy): shorter
// period, higher priority.
func ExampleAssignRateMonotonic() {
	flows := []wormnoc.Flow{
		{Name: "slow", Period: 9000, Deadline: 9000},
		{Name: "fast", Period: 1000, Deadline: 1000},
		{Name: "mid", Period: 5000, Deadline: 5000},
	}
	wormnoc.AssignRateMonotonic(flows)
	for _, f := range flows {
		fmt.Println(f.Name, f.Priority)
	}
	// Output:
	// slow 3
	// fast 1
	// mid 2
}
