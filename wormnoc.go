// Package wormnoc provides worst-case latency analysis and cycle-accurate
// simulation of real-time traffic on priority-preemptive wormhole
// networks-on-chip, reproducing
//
//	L. Soares Indrusiak, A. Burns, B. Nikolić,
//	"Buffer-aware bounds to multi-point progressive blocking in
//	priority-preemptive NoCs", DATE 2018.
//
// It implements the paper's proposed buffer-aware analysis (IBN) together
// with the baselines it is evaluated against (SB and XLWX), a flit-level
// simulator of the underlying router architecture, and workload
// generators for the paper's experiments.
//
// This package is the stable facade over the implementation packages in
// internal/; see the package documentation of internal/noc,
// internal/traffic, internal/core and internal/sim for the full model.
//
// # Quick start
//
//	topo, _ := wormnoc.NewMesh(4, 4, wormnoc.RouterConfig{
//		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
//	})
//	sys, _ := wormnoc.NewSystem(topo, []wormnoc.Flow{
//		{Name: "ctrl", Priority: 1, Period: 2000, Deadline: 2000, Length: 32, Src: 0, Dst: 15},
//		{Name: "video", Priority: 2, Period: 40000, Deadline: 40000, Length: 4096, Src: 1, Dst: 14},
//	})
//	res, _ := wormnoc.Analyze(sys, wormnoc.AnalysisOptions{Method: wormnoc.IBN})
//	for i := range res.Flows {
//		fmt.Println(sys.Flow(i).Name, res.R(i), res.Flows[i].Status)
//	}
package wormnoc

import (
	"io"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/sim"
	"wormnoc/internal/trace"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// Platform model (see internal/noc).
type (
	// Cycles is a duration or instant in NoC clock cycles.
	Cycles = noc.Cycles
	// NodeID identifies a processing node of the mesh.
	NodeID = noc.NodeID
	// LinkID identifies one unidirectional link.
	LinkID = noc.LinkID
	// Route is the ordered set of links from a source to a destination.
	Route = noc.Route
	// RouterConfig holds the homogeneous router parameters buf(Ξ), vc(Ξ),
	// linkl(Ξ) and routl(Ξ).
	RouterConfig = noc.RouterConfig
	// Topology is a W×H 2D mesh with dimension-order routing.
	Topology = noc.Topology
	// RoutingPolicy selects XY (default) or YX dimension-order routing.
	RoutingPolicy = noc.RoutingPolicy
)

// Routing policies.
const (
	// RoutingXY routes along the X dimension first (the paper's setup).
	RoutingXY = noc.XY
	// RoutingYX routes along the Y dimension first.
	RoutingYX = noc.YX
)

// Traffic model (see internal/traffic).
type (
	// Flow is one real-time traffic flow τ = (P, C, T, D, J, src, dst).
	Flow = traffic.Flow
	// System binds a flow set to a topology with routes precomputed.
	System = traffic.System
)

// Analyses (see internal/core).
type (
	// Method selects a response-time analysis (SB, SLA, XLWX or IBN).
	Method = core.Method
	// AnalysisOptions configures an analysis run.
	AnalysisOptions = core.Options
	// AnalysisResult holds per-flow worst-case latency bounds.
	AnalysisResult = core.Result
	// FlowResult is the per-flow outcome of an analysis.
	FlowResult = core.FlowResult
	// FlowStatus classifies a per-flow analysis outcome.
	FlowStatus = core.FlowStatus
	// InterferenceSets exposes S^D, S^I and the upstream/downstream
	// partitions used by the analyses.
	InterferenceSets = core.Sets
)

// Analysis methods.
const (
	// SB is the Shi & Burns 2008 analysis (optimistic under MPB).
	SB = core.SB
	// XLWX is the safe Xiong et al. 2017 baseline (Equation 5).
	XLWX = core.XLWX
	// IBN is the paper's proposed buffer-aware analysis (Equations 6–8).
	IBN = core.IBN
	// SLA is the simplified stage-level baseline (unsafe under MPB).
	SLA = core.SLA
)

// Per-flow analysis outcomes.
const (
	// Schedulable: the bound converged within the deadline.
	Schedulable = core.Schedulable
	// DeadlineMiss: the bound exceeds the deadline.
	DeadlineMiss = core.DeadlineMiss
	// DependencyFailed: a required higher-priority bound is unavailable.
	DependencyFailed = core.DependencyFailed
	// Diverged: the fixed point did not converge within the iteration cap.
	Diverged = core.Diverged
)

// Simulation (see internal/sim).
type (
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult reports observed latencies.
	SimResult = sim.Result
	// SimSweepResult aggregates a worst-case phasing search.
	SimSweepResult = sim.SweepResult
)

// NewMesh builds a W×H mesh topology with homogeneous routers.
func NewMesh(w, h int, cfg RouterConfig) (*Topology, error) {
	return noc.NewMesh(w, h, cfg)
}

// NewSystem validates a flow set against a topology and precomputes
// routes and zero-load latencies (Equation 1 of the paper).
func NewSystem(topo *Topology, flows []Flow) (*System, error) {
	return traffic.NewSystem(topo, flows)
}

// ZeroLoadLatency evaluates Equation 1 for a route of routeLen links and
// a packet of length flits.
func ZeroLoadLatency(cfg RouterConfig, routeLen, length int) Cycles {
	return traffic.ZeroLoadLatency(cfg, routeLen, length)
}

// BuildSets computes the interference sets of a system once, to be shared
// by several AnalyzeWithSets calls.
func BuildSets(sys *System) *InterferenceSets {
	return core.BuildSets(sys)
}

// Analyze computes worst-case response-time bounds for every flow under
// the selected analysis.
func Analyze(sys *System, opt AnalysisOptions) (*AnalysisResult, error) {
	return core.Analyze(sys, opt)
}

// AnalyzeWithSets is Analyze with pre-built interference sets.
func AnalyzeWithSets(sys *System, sets *InterferenceSets, opt AnalysisOptions) (*AnalysisResult, error) {
	return core.AnalyzeWithSets(sys, sets, opt)
}

// Engine runs analyses of one system repeatedly and cheaply: the
// interference sets are built once and the per-run working state is
// recycled. Safe for concurrent use.
type Engine = core.Engine

// Telemetry carries the engine's observability counters (fixed-point
// iterations, memo hits/misses, recursion depth, per-flow wall time).
type Telemetry = core.Telemetry

// NewEngine builds an analysis engine for the system.
func NewEngine(sys *System) *Engine {
	return core.NewEngine(sys)
}

// Simulate runs the cycle-accurate wormhole simulator over the system.
func Simulate(sys *System, cfg SimConfig) (*SimResult, error) {
	return sim.Run(sys, cfg)
}

// SweepOffsets searches for worst-case observed latencies by sweeping the
// release phase of one flow (the paper's Table II methodology).
func SweepOffsets(sys *System, base SimConfig, flowIdx int, maxOffset, step Cycles) (*SimSweepResult, error) {
	return sim.SweepOffsets(sys, base, flowIdx, maxOffset, step)
}

// Breakdown decomposes one flow's response-time bound term by term.
type Breakdown = core.Breakdown

// Explain runs the analysis and decomposes the bound of the given flow
// into per-interferer interference terms (R = C + Σ terms).
func Explain(sys *System, sets *InterferenceSets, opt AnalysisOptions, flow int) (*Breakdown, error) {
	return core.Explain(sys, sets, opt, flow)
}

// AssignRateMonotonic assigns unique priorities by non-decreasing period
// (the paper's policy).
func AssignRateMonotonic(flows []Flow) { priority.RateMonotonic(flows) }

// AssignDeadlineMonotonic assigns unique priorities by non-decreasing
// deadline.
func AssignDeadlineMonotonic(flows []Flow) { priority.DeadlineMonotonic(flows) }

// AssignAudsley searches for a schedulable priority assignment
// lowest-priority-first, using the given analysis as the oracle. See
// internal/priority for the heuristic caveats.
func AssignAudsley(topo *Topology, flows []Flow, opt AnalysisOptions) ([]Flow, bool, error) {
	return priority.Audsley(topo, flows, opt)
}

// ScaleLimit binary-searches the largest uniform packet-length scaling
// factor under which the system stays fully schedulable — the headroom a
// design has before its guarantees break (see internal/core/sensitivity.go).
func ScaleLimit(sys *System, opt AnalysisOptions, lo, hi, precision float64) (float64, error) {
	return core.ScaleLimit(sys, opt, lo, hi, precision)
}

// DidacticExample returns the paper's Section V scenario (Table I /
// Figure 3) at the given per-VC buffer depth — the canonical MPB
// demonstrator used throughout the documentation and tests.
func DidacticExample(bufDepth int) *System { return workload.Didactic(bufDepth) }

// SyntheticWorkload generates a random flow set following the paper's
// Section VI recipe (see internal/workload.SynthConfig for the knobs).
type SyntheticWorkload = workload.SynthConfig

// GenerateSynthetic builds a random flow set on the topology.
func GenerateSynthetic(topo *Topology, cfg SyntheticWorkload) (*System, error) {
	return workload.Synthetic(topo, cfg)
}

// MapAVBenchmark maps the autonomous-vehicle benchmark onto the topology
// with a random task placement (deterministic in seed). It returns
// workload.ErrNoNetworkFlows when every communicating task pair is
// co-mapped.
func MapAVBenchmark(topo *Topology, seed int64) (*System, error) {
	return workload.MapAV(topo, seed)
}

// TraceEvent is one flit transfer parsed from a simulator trace.
type TraceEvent = trace.Event

// GanttOptions configures RenderGantt.
type GanttOptions = trace.GanttOptions

// ParseTrace reads a CSV flit-transfer trace written via
// SimConfig.TraceWriter.
func ParseTrace(r io.Reader) ([]TraceEvent, error) { return trace.Parse(r) }

// RenderGantt renders per-link occupancy over time as ASCII art; see
// internal/trace.
func RenderGantt(sys *System, events []TraceEvent, opt GanttOptions) string {
	return trace.RenderGantt(sys, events, opt)
}

// FlowLegend renders the flow-symbol legend for RenderGantt output.
func FlowLegend(sys *System) string { return trace.FlowLegend(sys) }
