// Command topo inspects a mesh topology: link census, an ASCII drawing,
// Graphviz DOT export and route queries under XY or YX routing.
//
// Usage:
//
//	topo -mesh 4x4
//	topo -mesh 4x4 -dot > mesh.dot
//	topo -mesh 4x4 -route 0:15
//	topo -mesh 4x4 -route 0:15 -routing yx
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wormnoc/internal/noc"
)

func main() {
	var (
		mesh    = flag.String("mesh", "4x4", "mesh shape WxH")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
		route   = flag.String("route", "", "print the route between two nodes, as src:dst")
		routing = flag.String("routing", "xy", "dimension-order routing policy: xy or yx")
	)
	flag.Parse()

	parts := strings.Split(*mesh, "x")
	if len(parts) != 2 {
		fatal(fmt.Errorf("bad -mesh %q, want WxH", *mesh))
	}
	w, err1 := strconv.Atoi(parts[0])
	h, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		fatal(fmt.Errorf("bad -mesh %q", *mesh))
	}
	topo, err := noc.NewMesh(w, h, noc.DefaultRouterConfig())
	if err != nil {
		fatal(err)
	}
	switch strings.ToLower(*routing) {
	case "xy":
	case "yx":
		topo, err = topo.WithRouting(noc.YX)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("bad -routing %q (want xy or yx)", *routing))
	}

	if *dot {
		fmt.Print(topo.DOT())
		return
	}
	fmt.Println(topo)
	fmt.Printf("routing: %v\n\n", topo.Routing())
	fmt.Print(topo.ASCII())

	if *route != "" {
		rp := strings.Split(*route, ":")
		if len(rp) != 2 {
			fatal(fmt.Errorf("bad -route %q, want src:dst", *route))
		}
		src, err1 := strconv.Atoi(rp[0])
		dst, err2 := strconv.Atoi(rp[1])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -route %q", *route))
		}
		r, err := topo.Route(noc.NodeID(src), noc.NodeID(dst))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nroute(%d, %d): %d links, %d routers\n  %s\n",
			src, dst, r.Len(), r.Hops(), topo.RenderRoute(r))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topo:", err)
	os.Exit(1)
}
