// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON document, so benchmark numbers can be tracked as build
// artifacts and diffed across commits (results/BENCH_sim.json,
// results/BENCH_analysis.json; see Makefile `bench`).
//
// Besides the raw per-benchmark records it derives before/after pairs
// (see pairPrefixes): any BenchmarkEngineReference/<scenario> with a
// matching BenchmarkEngine/<scenario> becomes a pair with the speedup
// of the event-driven engine over the retained reference engine, and
// any BenchmarkWhatIfScratch/<scenario> pairs with
// BenchmarkWhatIfIncremental/<scenario> for the speedup of the
// delta-aware incremental analysis engine over from-scratch re-analysis,
// and any BenchmarkRunManySequential/<scenario> pairs with
// BenchmarkRunMany/<scenario> for the scenario throughput of the batch
// runner over one-at-a-time engine runs, and any
// BenchmarkExhaustiveRaw/<scenario> pairs with
// BenchmarkExhaustiveReduced/<scenario> for the explicit-state
// backend's symmetry/cluster reductions over the raw grid — the
// numbers those rewrites are held to.
//
// With -baseline, the freshly parsed document is additionally gated
// against a previously committed BENCH_*.json: any tracked pair whose
// speedup fell more than -max-regress percent below the baseline's
// (or that vanished from the run entirely) fails the gate with exit
// code 3, so CI distinguishes "benchmarks regressed" from "invocation
// broke". The gate compares the speedup RATIO, not raw ns/op, so it is
// robust to runner hardware changing between commits.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -out bench.json
//	benchjson -in bench.txt                    # JSON to stdout
//	benchjson -in bench.txt -out new.json -baseline results/BENCH_exhaustive.json -max-regress 20%
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the output format; bump when fields change meaning.
const Schema = "wormnoc-bench/v1"

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "cycles/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Pair is a derived before/after comparison on one scenario: the
// reference vs event-driven simulation engine, or the from-scratch vs
// incremental analysis engine (see pairPrefixes).
type Pair struct {
	Scenario   string  `json:"scenario"`
	BeforeNs   float64 `json:"before_ns_per_op"`
	AfterNs    float64 `json:"after_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	BeforeName string  `json:"before"`
	AfterName  string  `json:"after"`
}

// Doc is the emitted document.
type Doc struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Pairs      []Pair      `json:"pairs,omitempty"`
}

// benchLine matches `BenchmarkName[-P]  N  1234 ns/op [extra unit]...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	var (
		in         = flag.String("in", "-", "benchmark text to parse (- = stdin)")
		out        = flag.String("out", "-", "output JSON file (- = stdout)")
		baseline   = flag.String("baseline", "", "committed BENCH_*.json to gate pair speedups against")
		maxRegress = flag.String("max-regress", "10%", "max tolerated pair-speedup regression vs -baseline (e.g. 20%)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if *baseline != "" {
		tol, err := ParseRegress(*maxRegress)
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Doc
		err = json.NewDecoder(f).Decode(&base)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baseline, err))
		}
		regressions := Gate(&base, doc, tol)
		for _, msg := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", msg)
		}
		if len(regressions) > 0 {
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d pair(s) within %.0f%% of baseline %s\n",
			len(base.Pairs), tol*100, *baseline)
	}
}

// ParseRegress parses a -max-regress value: a non-negative percentage
// with optional trailing "%".
func ParseRegress(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q: want a non-negative percentage like 20%%", s)
	}
	return v / 100, nil
}

// Gate compares the freshly measured document against a committed
// baseline and reports one message per regressed pair: a tracked
// before/after speedup that fell below baseline·(1−tol), or a baseline
// pair the new run no longer produces at all (a renamed or deleted
// benchmark would otherwise silently retire its gate). New pairs absent
// from the baseline pass — they gate from the next baseline refresh on.
func Gate(base, doc *Doc, tol float64) []string {
	byBefore := map[string]Pair{}
	for _, p := range doc.Pairs {
		byBefore[p.BeforeName] = p
	}
	var out []string
	for _, old := range base.Pairs {
		p, ok := byBefore[old.BeforeName]
		if !ok {
			out = append(out, fmt.Sprintf("pair %s vs %s: present in baseline, missing from this run",
				old.BeforeName, old.AfterName))
			continue
		}
		floor := old.Speedup * (1 - tol)
		if p.Speedup < floor {
			out = append(out, fmt.Sprintf("pair %s: speedup %.2fx fell below %.2fx (baseline %.2fx − %.0f%%)",
				p.BeforeName, p.Speedup, floor, old.Speedup, tol*100))
		}
	}
	return out
}

// Parse reads `go test -bench` output and builds the document. Lines
// that are not benchmark results (test chatter, pass/fail footers) are
// ignored; the same benchmark appearing twice (e.g. -count=2) keeps the
// faster run, the convention benchstat calls "min of counts".
//
// Input with no benchmark lines at all is an error, not an empty
// document: it means the -bench regexp matched nothing or the test
// binary failed before benchmarks ran, and an empty BENCH_*.json
// committed as a baseline would silently disable every tracked pair.
// Likewise, a tracked pair family (pairPrefixes) where one side matched
// benchmarks and the other matched none is an error — a renamed
// benchmark or a half-matching regexp, never a legitimate run. Families
// absent on both sides stay legal so split runs (sim-only,
// analysis-only) keep working.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		b, err := parseResult(m[1], m[2], m[3])
		if err != nil {
			return nil, fmt.Errorf("benchjson: line %q: %w", sc.Text(), err)
		}
		if prev, ok := byName[b.Name]; !ok || b.NsPerOp < prev.NsPerOp {
			byName[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("no benchmark results in input (did the -bench regexp match anything, and did the test binary build?)")
	}
	for _, b := range byName {
		doc.Benchmarks = append(doc.Benchmarks, *b)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	pairs, err := derivePairs(byName)
	if err != nil {
		return nil, err
	}
	doc.Pairs = pairs
	return doc, nil
}

func parseResult(name, iters, rest string) (*Benchmark, error) {
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(iters, 10, 64)
	if err != nil {
		return nil, err
	}
	b := &Benchmark{Name: name, Iterations: n}
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q for unit %q", val, unit)
		}
		switch unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			iv := int64(v)
			b.BytesPerOp = &iv
		case "allocs/op":
			iv := int64(v)
			b.AllocsPerOp = &iv
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// pairPrefixes lists the tracked before/after benchmark families: a
// result named <before><scenario> pairs with <after><scenario>.
var pairPrefixes = []struct{ before, after string }{
	{"BenchmarkEngineReference/", "BenchmarkEngine/"},
	{"BenchmarkWhatIfScratch/", "BenchmarkWhatIfIncremental/"},
	{"BenchmarkRunManySequential/", "BenchmarkRunMany/"},
	// The exhaustive backend's raw-grid enumeration vs the symmetry-
	// quotiented, cluster-decomposed one (results/BENCH_exhaustive.json,
	// Makefile `bench-exhaustive`). The states/op metric on each record
	// carries the state-count reduction behind the wall-clock speedup.
	{"BenchmarkExhaustiveRaw/", "BenchmarkExhaustiveReduced/"},
	// cmd/nocload emits these (they are not `go test` benchmarks): one
	// nocserve worker loaded directly vs the same load through a
	// cluster coordinator fronting a worker fleet. "Speedup" here is
	// the single-node/fleet mean-latency ratio; the interesting
	// figures are the p99/p999 and shed/hedge-rate metrics carried on
	// each record (results/BENCH_serve.json, Makefile `bench-serve`).
	{"BenchmarkServeSingle/", "BenchmarkServeFleet/"},
}

// derivePairs matches each pairPrefixes family's before/after runs by
// scenario and reports the speedups, sorted by before name then
// scenario. A family with results on exactly one side is an error (see
// Parse); a family absent from the input entirely is skipped.
func derivePairs(byName map[string]*Benchmark) ([]Pair, error) {
	var pairs []Pair
	for _, pp := range pairPrefixes {
		nBefore, nAfter := 0, 0
		for name := range byName {
			if strings.HasPrefix(name, pp.before) {
				nBefore++
			}
			if strings.HasPrefix(name, pp.after) {
				nAfter++
			}
		}
		if (nBefore == 0) != (nAfter == 0) {
			return nil, fmt.Errorf("pair family %s* vs %s*: %d before and %d after results — one side of a tracked pair is missing (renamed benchmark, or -bench regexp matching only half the family?)",
				pp.before, pp.after, nBefore, nAfter)
		}
		for name, ref := range byName {
			scen, ok := strings.CutPrefix(name, pp.before)
			if !ok {
				continue
			}
			ev, ok := byName[pp.after+scen]
			if !ok || ev.NsPerOp <= 0 {
				continue
			}
			pairs = append(pairs, Pair{
				Scenario:   scen,
				BeforeNs:   ref.NsPerOp,
				AfterNs:    ev.NsPerOp,
				Speedup:    ref.NsPerOp / ev.NsPerOp,
				BeforeName: name,
				AfterName:  pp.after + scen,
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].BeforeName != pairs[j].BeforeName {
			return pairs[i].BeforeName < pairs[j].BeforeName
		}
		return pairs[i].Scenario < pairs[j].Scenario
	})
	return pairs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
