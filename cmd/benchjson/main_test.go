package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wormnoc/internal/sim
BenchmarkEngine/low-8      	      75	  16852002 ns/op	     138 B/op	       2 allocs/op
BenchmarkEngine/moderate   	     148	   8169720 ns/op	      53 B/op	       1 allocs/op
BenchmarkEngineReference/low-8      	      16	  62785976 ns/op	   38296 B/op	     576 allocs/op
BenchmarkEngineReference/moderate   	      38	  33740869 ns/op	   34448 B/op	     537 allocs/op
BenchmarkSimulator/saturated        	      96	  11072287 ns/op	   9031581 cycles/s	    1860 B/op	       5 allocs/op
BenchmarkWhatIfScratch/period/n=400-8         	      28	  40913363 ns/op	 6434461 B/op	   68902 allocs/op
BenchmarkWhatIfIncremental/period/n=400-8     	     988	   1194335 ns/op	  830416 B/op	    3695 allocs/op
BenchmarkRunManySequential/campaign64-8       	      10	 104000000 ns/op	     512 B/op	       8 allocs/op
BenchmarkRunMany/campaign64-8                 	      40	  26000000 ns/op	    1024 B/op	      24 allocs/op
BenchmarkExhaustiveRaw/ref4-8                 	       1	1257000000 ns/op	      8640 states/op
BenchmarkExhaustiveReduced/ref4-8             	     600	   1900000 ns/op	        37 states/op
PASS
ok  	wormnoc	15.244s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Benchmarks) != 11 {
		t.Fatalf("parsed %d benchmarks, want 11: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	low, ok := byName["BenchmarkEngine/low"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from BenchmarkEngine/low-8")
	}
	if low.NsPerOp != 16852002 || low.Iterations != 75 {
		t.Errorf("BenchmarkEngine/low parsed as %+v", low)
	}
	if low.AllocsPerOp == nil || *low.AllocsPerOp != 2 || low.BytesPerOp == nil || *low.BytesPerOp != 138 {
		t.Errorf("benchmem fields wrong: %+v", low)
	}
	sat := byName["BenchmarkSimulator/saturated"]
	if got := sat.Metrics["cycles/s"]; got != 9031581 {
		t.Errorf("custom metric cycles/s = %v", got)
	}

	if len(doc.Pairs) != 5 {
		t.Fatalf("derived %d pairs, want 5: %+v", len(doc.Pairs), doc.Pairs)
	}
	if doc.Pairs[0].Scenario != "low" || doc.Pairs[1].Scenario != "moderate" {
		t.Errorf("pair order: %+v", doc.Pairs)
	}
	if s := doc.Pairs[0].Speedup; s < 3.7 || s > 3.8 {
		t.Errorf("low speedup = %.2f, want ~3.73", s)
	}
	byBefore := map[string]Pair{}
	for _, p := range doc.Pairs {
		byBefore[p.BeforeName] = p
	}
	whatif, ok := byBefore["BenchmarkWhatIfScratch/period/n=400"]
	if !ok || whatif.AfterName != "BenchmarkWhatIfIncremental/period/n=400" {
		t.Errorf("what-if pair not derived: %+v", doc.Pairs)
	}
	if s := whatif.Speedup; s < 34.2 || s > 34.3 {
		t.Errorf("what-if speedup = %.2f, want ~34.26", s)
	}
	runmany, ok := byBefore["BenchmarkRunManySequential/campaign64"]
	if !ok || runmany.AfterName != "BenchmarkRunMany/campaign64" {
		t.Errorf("RunMany pair not derived: %+v", doc.Pairs)
	}
	if s := runmany.Speedup; s < 3.9 || s > 4.1 {
		t.Errorf("RunMany speedup = %.2f, want ~4.0", s)
	}
	exh, ok := byBefore["BenchmarkExhaustiveRaw/ref4"]
	if !ok || exh.AfterName != "BenchmarkExhaustiveReduced/ref4" {
		t.Errorf("exhaustive reduction pair not derived: %+v", doc.Pairs)
	}
	if s := exh.Speedup; s < 660 || s > 663 {
		t.Errorf("exhaustive speedup = %.2f, want ~661.6", s)
	}
}

// TestParseRejectsEmptyInput pins the fix for silently emitting empty
// benchmark documents: input with no benchmark lines (failed build,
// wrong -bench regexp) must error instead of producing a baseline that
// disables every tracked pair.
func TestParseRejectsEmptyInput(t *testing.T) {
	for _, in := range []string{"", "PASS\nok  \twormnoc\t0.1s\n"} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted input with zero benchmarks", in)
		}
	}
}

// TestParseRejectsHalfPair: a tracked pair family with results on
// exactly one side means a renamed benchmark or a regexp matching only
// half the family — an error, while families absent from both sides
// (split sim/analysis bench runs) stay legal.
func TestParseRejectsHalfPair(t *testing.T) {
	half := "BenchmarkEngine/low 10 100 ns/op\n"
	if _, err := Parse(strings.NewReader(half)); err == nil {
		t.Error("Parse accepted a pair family with only the after side present")
	}
	half = "BenchmarkRunManySequential/campaign64 10 100 ns/op\n"
	if _, err := Parse(strings.NewReader(half)); err == nil {
		t.Error("Parse accepted a pair family with only the before side present")
	}
	// Both sides absent: fine — e.g. an analysis-only bench run.
	ok := "BenchmarkWhatIfScratch/x 10 100 ns/op\nBenchmarkWhatIfIncremental/x 10 50 ns/op\n"
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Errorf("Parse rejected a run with one complete family and others absent: %v", err)
	}
}

// TestParseServePairs: cmd/nocload's report lines (single worker vs
// coordinator-fronted fleet) are a tracked pair family with custom
// latency/rate metrics, under the same zero-match and half-pair guards
// as the `go test` families.
func TestParseServePairs(t *testing.T) {
	in := `BenchmarkServeSingle/mixed 	    4000	    5000000 ns/op	 4200 p50_us	 9000 p99_us	 12000 p999_us	 0.0000 shed_rate	 0.0000 err_rate	 0.0000 hedge_rate	 800.0 req/s
BenchmarkServeFleet/mixed 	   12000	    2500000 ns/op	 2100 p50_us	 5000 p99_us	  8000 p999_us	 0.0100 shed_rate	 0.0000 err_rate	 0.0600 hedge_rate	 2400.0 req/s
BenchmarkServeSingle/analyze 	 3000	    4000000 ns/op	 3900 p50_us	 8000 p99_us	 11000 p999_us	 0.0000 shed_rate	 0.0000 err_rate	 0.0000 hedge_rate	 600.0 req/s
BenchmarkServeFleet/analyze 	 9000	    2000000 ns/op	 1900 p50_us	 4000 p99_us	  7000 p999_us	 0.0000 shed_rate	 0.0000 err_rate	 0.0500 hedge_rate	 1800.0 req/s
`
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	fleet, ok := byName["BenchmarkServeFleet/mixed"]
	if !ok {
		t.Fatalf("fleet record missing: %+v", doc.Benchmarks)
	}
	if fleet.Metrics["p99_us"] != 5000 || fleet.Metrics["hedge_rate"] != 0.06 || fleet.Metrics["req/s"] != 2400 {
		t.Errorf("fleet metrics wrong: %+v", fleet.Metrics)
	}
	if len(doc.Pairs) != 2 {
		t.Fatalf("derived %d pairs, want 2: %+v", len(doc.Pairs), doc.Pairs)
	}
	for _, p := range doc.Pairs {
		if p.Speedup != 2.0 {
			t.Errorf("serve pair %s speedup = %v, want 2.0", p.Scenario, p.Speedup)
		}
	}
	// Half-pair guard covers the serve family too.
	if _, err := Parse(strings.NewReader("BenchmarkServeSingle/mixed 10 100 ns/op\n")); err == nil {
		t.Error("Parse accepted a serve family with only the single-node side present")
	}
}

// TestGate exercises the -baseline regression gate: speedups within
// tolerance pass, speedups below baseline·(1−tol) fail, and a tracked
// pair that vanished from the run fails so a renamed benchmark cannot
// silently retire its gate. New pairs absent from the baseline pass.
func TestGate(t *testing.T) {
	pair := func(before, after string, speedup float64) Pair {
		return Pair{Scenario: "x", BeforeName: before + "/x", AfterName: after + "/x", Speedup: speedup}
	}
	base := &Doc{Pairs: []Pair{
		pair("BenchmarkExhaustiveRaw", "BenchmarkExhaustiveReduced", 600),
		pair("BenchmarkEngineReference", "BenchmarkEngine", 4),
	}}

	// Within tolerance: 10% below a 600x baseline clears a 20% gate.
	doc := &Doc{Pairs: []Pair{
		pair("BenchmarkExhaustiveRaw", "BenchmarkExhaustiveReduced", 540),
		pair("BenchmarkEngineReference", "BenchmarkEngine", 4.2),
		pair("BenchmarkRunManySequential", "BenchmarkRunMany", 1), // new pair, no baseline
	}}
	if msgs := Gate(base, doc, 0.20); len(msgs) != 0 {
		t.Errorf("in-tolerance run failed the gate: %v", msgs)
	}

	// A collapsed speedup and a vanished pair are both regressions.
	doc = &Doc{Pairs: []Pair{
		pair("BenchmarkExhaustiveRaw", "BenchmarkExhaustiveReduced", 300),
	}}
	msgs := Gate(base, doc, 0.20)
	if len(msgs) != 2 {
		t.Fatalf("gate reported %d regressions, want 2 (collapse + missing pair): %v", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "300.00x") || !strings.Contains(msgs[1], "missing") {
		t.Errorf("regression messages: %v", msgs)
	}

	// Zero tolerance: any dip fails.
	doc = &Doc{Pairs: []Pair{
		pair("BenchmarkExhaustiveRaw", "BenchmarkExhaustiveReduced", 599.9),
		pair("BenchmarkEngineReference", "BenchmarkEngine", 4),
	}}
	if msgs := Gate(base, doc, 0); len(msgs) != 1 {
		t.Errorf("zero-tolerance gate reported %v", msgs)
	}
}

func TestParseRegress(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"10%", 0.10, true}, {"20", 0.20, true}, {"0%", 0, true},
		{"-5%", 0, false}, {"ten", 0, false}, {"", 0, false},
	} {
		got, err := ParseRegress(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseRegress(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestParseKeepsFastestDuplicate(t *testing.T) {
	in := "BenchmarkX 10 200 ns/op\nBenchmarkX 20 100 ns/op\n"
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].NsPerOp != 100 {
		t.Fatalf("duplicate handling: %+v", doc.Benchmarks)
	}
}
