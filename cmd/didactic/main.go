// Command didactic regenerates Section V of the paper: the flow
// parameters of Table I and the analysis and simulation results of
// Table II for the three-flow MPB example of Figure 3.
//
// The analytic columns (SB, XLWX, IBN at 10- and 2-flit buffers) are
// computed by internal/core; the simulation columns are the worst
// latencies observed by the cycle-accurate simulator over an exhaustive
// sweep of the interfering flow τ1's release phase.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/trace"
	"wormnoc/internal/workload"
)

func main() {
	var (
		duration = flag.Int64("duration", 20_000, "simulated cycles per phasing")
		maxOff   = flag.Int64("maxoffset", 200, "sweep τ1 offsets in [0, maxoffset)")
		step     = flag.Int64("step", 1, "offset sweep step")
		gantt    = flag.Bool("gantt", false, "also render the MPB scenario as a link-occupancy chart")
	)
	flag.Parse()

	sys := workload.Didactic(2)

	fmt.Println("Table I: flow parameters")
	fmt.Printf("%6s %8s %6s %8s %8s %8s %4s %4s\n", "flow", "C", "L", "|route|", "T", "D", "J", "P")
	for i := 0; i < sys.NumFlows(); i++ {
		f := sys.Flow(i)
		fmt.Printf("%6s %8d %6d %8d %8d %8d %4d %4d\n",
			f.Name, sys.C(i), f.Length, sys.Route(i).Len(), f.Period, f.Deadline, f.Jitter, f.Priority)
	}
	fmt.Println()

	columns := []struct {
		label string
		buf   int
		opt   core.Options
	}{
		{"R_SB", 2, core.Options{Method: core.SB}},
		{"R_XLWX", 2, core.Options{Method: core.XLWX}},
		{"R_IBN b=10", 10, core.Options{Method: core.IBN}},
		{"R_IBN b=2", 2, core.Options{Method: core.IBN}},
	}
	analytic := make([][]noc.Cycles, len(columns))
	for c, col := range columns {
		res, err := core.Analyze(workload.Didactic(col.buf), col.opt)
		if err != nil {
			fatal(err)
		}
		analytic[c] = make([]noc.Cycles, sys.NumFlows())
		for i := range analytic[c] {
			analytic[c][i] = res.R(i)
		}
	}

	simWorst := map[int][]noc.Cycles{}
	for _, buf := range []int{10, 2} {
		s := workload.Didactic(buf)
		sweep, err := sim.SweepOffsets(s, sim.Config{Duration: noc.Cycles(*duration)}, 0,
			noc.Cycles(*maxOff), noc.Cycles(*step))
		if err != nil {
			fatal(err)
		}
		simWorst[buf] = sweep.Worst
	}

	fmt.Println("Table II: analysis and simulation results")
	fmt.Printf("%6s", "flow")
	for _, col := range columns {
		fmt.Printf(" %11s", col.label)
	}
	fmt.Printf(" %11s %11s\n", "R_sim b=10", "R_sim b=2")
	for i := 0; i < sys.NumFlows(); i++ {
		fmt.Printf("%6s", sys.Flow(i).Name)
		for c := range columns {
			fmt.Printf(" %11d", analytic[c][i])
		}
		fmt.Printf(" %11d %11d\n", simWorst[10][i], simWorst[2][i])
	}
	fmt.Println()
	fmt.Println("paper Table II:       R_SB R_XLWX R_IBN10 R_IBN2 R_sim10 R_sim2")
	fmt.Println("  τ1                    62     62      62     62      62     62")
	fmt.Println("  τ2                   328    328     328    328     324    324")
	fmt.Println("  τ3                   336    460     396    348     352    336")

	sb3 := analytic[0][2]
	if w := simWorst[10][2]; w > sb3 {
		fmt.Printf("\nMPB demonstrated: observed τ3 latency %d at b=10 exceeds the unsafe SB bound %d\n", w, sb3)
	}

	if *gantt {
		var buf bytes.Buffer
		if _, err := sim.Run(sys, sim.Config{
			Duration:          500,
			MaxPacketsPerFlow: 3,
			TraceWriter:       &buf,
		}); err != nil {
			fatal(err)
		}
		events, err := trace.Parse(&buf)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nthe MPB mechanism, first 400 cycles (τ2's backpressure stop-and-go):")
		fmt.Print(trace.RenderGantt(sys, events, trace.GanttOptions{To: 400, Width: 100}))
		fmt.Print(trace.FlowLegend(sys))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "didactic:", err)
	os.Exit(1)
}
