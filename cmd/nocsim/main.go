// Command nocsim drives the cycle-accurate wormhole simulator over a flow
// set described as JSON (see internal/traffic.Document for the schema)
// and reports observed packet latencies, optionally against analytic
// bounds.
//
// Usage:
//
//	nocsim -in flows.json -duration 100000
//	nocsim -in flows.json -duration 100000 -offsets 0,40,0
//	nocsim -in flows.json -sweep 0 -maxoffset 200    # phase search on flow 0
//	nocsim -in flows.json -trace trace.csv           # flit-level trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/prof"
	"wormnoc/internal/sim"
	"wormnoc/internal/stats"
	"wormnoc/internal/trace"
	"wormnoc/internal/traffic"
)

func main() {
	var (
		in         = flag.String("in", "-", "input JSON file (- = stdin)")
		duration   = flag.Int64("duration", 100_000, "simulated cycles")
		packets    = flag.Int("packets", 0, "stop each flow after N packets (0 = unlimited)")
		offsetStr  = flag.String("offsets", "", "comma list of per-flow release offsets")
		sweepFlow  = flag.Int("sweep", -1, "sweep this flow's offset for worst case (-1 = single run)")
		maxOffset  = flag.Int64("maxoffset", 0, "offset sweep bound (default: swept flow's period)")
		step       = flag.Int64("step", 1, "offset sweep step")
		tracePath  = flag.String("trace", "", "write flit-transfer CSV trace to this file")
		gantt      = flag.Bool("gantt", false, "render an ASCII link-occupancy Gantt chart of the run")
		ganttFrom  = flag.Int64("gantt-from", 0, "Gantt window start cycle")
		ganttTo    = flag.Int64("gantt-to", 0, "Gantt window end cycle (0 = end of trace)")
		bounds     = flag.Bool("bounds", true, "print IBN/XLWX bounds next to observations")
		showStats  = flag.Bool("stats", false, "print per-flow latency distribution statistics")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var r io.Reader
	if *in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	sys, err := traffic.ReadJSON(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("platform: %s\n", sys.Topology())

	cfg := sim.Config{Duration: noc.Cycles(*duration), MaxPacketsPerFlow: *packets}
	if *offsetStr != "" {
		parts := strings.Split(*offsetStr, ",")
		if len(parts) != sys.NumFlows() {
			fatal(fmt.Errorf("got %d offsets for %d flows", len(parts), sys.NumFlows()))
		}
		cfg.Offsets = make([]noc.Cycles, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad offset %q: %v", p, err))
			}
			cfg.Offsets[i] = noc.Cycles(v)
		}
	}

	var worst []noc.Cycles
	var completed []int
	if *sweepFlow >= 0 {
		mo := noc.Cycles(*maxOffset)
		if mo == 0 {
			if *sweepFlow >= sys.NumFlows() {
				fatal(fmt.Errorf("sweep flow %d out of range", *sweepFlow))
			}
			mo = sys.Flow(*sweepFlow).Period
		}
		res, err := sim.SweepOffsets(sys, cfg, *sweepFlow, mo, noc.Cycles(*step))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offset sweep: %d runs of %d cycles on flow %d\n", res.Runs, *duration, *sweepFlow)
		worst = res.Worst
	} else {
		var writers []io.Writer
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			fmt.Fprintln(f, "cycle,link,flow,packet,flit")
			writers = append(writers, f)
		}
		var ganttBuf bytes.Buffer
		if *gantt {
			writers = append(writers, &ganttBuf)
		}
		if len(writers) > 0 {
			cfg.TraceWriter = io.MultiWriter(writers...)
		}
		cfg.RecordLatencies = *showStats
		res, err := sim.Run(sys, cfg)
		if err != nil {
			fatal(err)
		}
		worst = res.WorstLatency
		completed = res.Completed
		fmt.Printf("simulated %d cycles; %d packets in flight at horizon\n", *duration, res.InFlight)
		if *showStats {
			fmt.Println("\nper-flow latency distributions:")
			for i := 0; i < sys.NumFlows(); i++ {
				name := sys.Flow(i).Name
				if name == "" {
					name = fmt.Sprintf("flow%d", i)
				}
				samples := make([]float64, len(res.Latencies[i]))
				for k, l := range res.Latencies[i] {
					samples[k] = float64(l)
				}
				fmt.Printf("  %-12s %s\n", name, stats.Summarise(samples))
			}
		}
		if *gantt {
			events, err := trace.Parse(&ganttBuf)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			fmt.Print(trace.RenderGantt(sys, events, trace.GanttOptions{
				From: noc.Cycles(*ganttFrom),
				To:   noc.Cycles(*ganttTo),
			}))
			fmt.Print(trace.FlowLegend(sys))
		}
	}

	var ibn, xlwx *core.Result
	if *bounds {
		sets := core.BuildSets(sys)
		ibn, err = core.AnalyzeWithSets(sys, sets, core.Options{Method: core.IBN})
		if err != nil {
			fatal(err)
		}
		xlwx, err = core.AnalyzeWithSets(sys, sets, core.Options{Method: core.XLWX})
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("\n%-12s %10s %10s", "flow", "C", "observed")
	if completed != nil {
		fmt.Printf(" %9s", "packets")
	}
	if *bounds {
		fmt.Printf(" %10s %10s", "R_IBN", "R_XLWX")
	}
	fmt.Println()
	violation := false
	for i := 0; i < sys.NumFlows(); i++ {
		name := sys.Flow(i).Name
		if name == "" {
			name = fmt.Sprintf("flow%d", i)
		}
		fmt.Printf("%-12s %10d %10d", name, sys.C(i), worst[i])
		if completed != nil {
			fmt.Printf(" %9d", completed[i])
		}
		if *bounds {
			fmt.Printf(" %10s %10s", boundStr(ibn.Flows[i]), boundStr(xlwx.Flows[i]))
			if ibn.Flows[i].Status == core.Schedulable && worst[i] > ibn.Flows[i].R {
				violation = true
			}
		}
		fmt.Println()
	}
	if violation {
		fmt.Println("\nWARNING: an observation exceeded its IBN bound — please report this scenario")
		stopProf()
		os.Exit(2)
	}
}

func boundStr(fr core.FlowResult) string {
	if fr.Status == core.Schedulable || fr.Status == core.DeadlineMiss {
		return strconv.FormatInt(int64(fr.R), 10)
	}
	return "n/a"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
