// Command nocfuzz drives the differential verification oracle from the
// command line: it generates random scenarios, cross-checks every
// registered analysis against the simulator's adversarial phasing
// search, shrinks any invariant violation to a minimal counterexample
// and persists it as a replayable JSON artifact.
//
// Usage:
//
//	nocfuzz run -n 400 -seed 1 -out counterexamples   # fuzz 400 scenarios
//	nocfuzz replay -in counterexamples/ce-000012.json # re-check one artifact
//	nocfuzz corpus -n 16 -out internal/oracle/testdata/fuzz/FuzzOracleScenario
//
// Exit codes: 0 clean, 1 usage or I/O error, 3 a violation was found
// (run) or still reproduces (replay) — distinct so CI can tell "broken
// invocation" from "broken invariant".
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "corpus":
		cmdCorpus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nocfuzz: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  nocfuzz run    [-n N] [-seed S] [-out DIR] [-duration D] [-restarts R]
                 [-probes P] [-refine K] [-workers W] [-scenario-workers SW]
                 [-keep-going] [-v] [-cpuprofile FILE] [-memprofile FILE]
  nocfuzz replay -in FILE [-v]
  nocfuzz corpus [-n N] [-seed S] -out DIR

run     generates N scenarios from S, checks every invariant, shrinks
        violations and writes one artifact per violating scenario to DIR.
replay  re-runs the check an artifact records; exit 3 if it reproduces.
corpus  emits go-fuzz seed files (one int64 seed each) for
        internal/oracle's FuzzOracleScenario target.
`)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nocfuzz: %v\n", err)
	os.Exit(1)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		n          = fs.Int("n", 100, "number of scenarios to check")
		seed       = fs.Int64("seed", 1, "root seed; scenario i uses a seed derived from it")
		out        = fs.String("out", "counterexamples", "directory for counterexample artifacts")
		duration   = fs.Int64("duration", 12_000, "simulation horizon per phasing probe, cycles")
		restarts   = fs.Int("restarts", 2, "random restarts per phasing search")
		probes     = fs.Int("probes", 4, "probes per flow and restart")
		refine     = fs.Int("refine", 1, "greedy refinement sweeps per restart")
		workers    = fs.Int("workers", 0, "parallel phasing searches within one scenario (0 = auto)")
		scWorkers  = fs.Int("scenario-workers", 0, "scenarios checked in parallel (0 = all CPUs); per-scenario searches then run serially")
		keepGoing  = fs.Bool("keep-going", false, "check all N scenarios even after violations")
		verbose    = fs.Bool("v", false, "log every scenario, not just violating ones")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	fs.Parse(args)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	// errStop cancels the campaign after the first violating scenario
	// (default mode); it is not a failure of the campaign machinery.
	errStop := errors.New("stop after violation")
	var mu sync.Mutex // serialises shrinking, artifact writes and output
	stats, err := oracle.Campaign(oracle.CampaignConfig{
		Scenarios: *n,
		Seed:      *seed,
		Check: oracle.CheckConfig{
			Duration:      noc.Cycles(*duration),
			Restarts:      *restarts,
			ProbesPerFlow: *probes,
			RefineSteps:   *refine,
			Workers:       *workers,
		},
		Workers: *scWorkers,
	}, func(i int, sc *oracle.Scenario, ccfg oracle.CheckConfig, rep *oracle.Report) error {
		mu.Lock()
		defer mu.Unlock()
		if *verbose {
			fmt.Printf("[%d/%d] %s: %d violations, %d findings, %d sim runs\n",
				i+1, *n, sc, len(rep.Violations), len(rep.Findings), rep.SimRuns)
		}
		if len(rep.Violations) == 0 {
			return nil
		}
		v := rep.Violations[0]
		fmt.Printf("VIOLATION at scenario %d (%s):\n  %s\n", i, sc, v.String())

		fmt.Printf("  shrinking...")
		shrunk, err := oracle.Shrink(sc, v, ccfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf(" %d reductions in %d attempts -> %s\n",
			shrunk.Reductions, shrunk.Attempts, shrunk.Scenario)

		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("ce-%06d.json", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		art := oracle.NewArtifact(sc, ccfg, *oracle.FindViolation(shrunk.Report, v), shrunk)
		if err := art.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  counterexample written to %s\n", path)
		if !*keepGoing {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		fatal(err)
	}
	fmt.Printf("%d scenarios checked, %d sim runs, %d violations\n", stats.Checked, stats.SimRuns, stats.Violations)
	if stats.Violations > 0 {
		stopProf()
		os.Exit(3)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "counterexample artifact to replay (required)")
		verbose = fs.Bool("v", false, "print the full violation list of the replayed check")
	)
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(1)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	art, err := oracle.ReadArtifact(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rep, reproduced, err := art.Replay()
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, v := range rep.Violations {
			fmt.Printf("violation: %s\n", v.String())
		}
		for _, v := range rep.Findings {
			fmt.Printf("finding:   %s\n", v.String())
		}
	}
	if reproduced {
		fmt.Printf("REPRODUCED: %s/%s still violates (%s)\n",
			art.Violation.Class, art.Violation.Invariant, *in)
		os.Exit(3)
	}
	fmt.Printf("not reproduced: %s/%s no longer violates (%s)\n",
		art.Violation.Class, art.Violation.Invariant, *in)
}

func cmdCorpus(args []string) {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	var (
		n    = fs.Int("n", 16, "number of seed files to emit")
		seed = fs.Int64("seed", 1, "root seed the corpus seeds derive from")
		out  = fs.String("out", "", "target corpus directory (required)")
	)
	fs.Parse(args)
	if *out == "" {
		fs.Usage()
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i := 0; i < *n; i++ {
		s := oracle.DeriveSeed(*seed, int64(i))
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\n", s)
		path := filepath.Join(*out, fmt.Sprintf("nocfuzz-%04d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d seed files written to %s\n", *n, *out)
}
