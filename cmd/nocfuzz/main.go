// Command nocfuzz drives the differential verification oracle from the
// command line: it generates random scenarios, cross-checks every
// registered analysis against the simulator's adversarial phasing
// search, shrinks any invariant violation to a minimal counterexample
// and persists it as a replayable JSON artifact.
//
// Usage:
//
//	nocfuzz run -n 400 -seed 1 -out counterexamples   # fuzz 400 scenarios
//	nocfuzz replay -in counterexamples/ce-000012.json # re-check one artifact
//	nocfuzz corpus -n 16 -out internal/oracle/testdata/fuzz/FuzzOracleScenario
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 coverage incomplete
// under exhaust -require-complete, 3 a violation was found (run) or
// still reproduces (replay) — distinct so CI can tell "broken
// invocation" from "missing proof" from "broken invariant".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "exhaust":
		cmdExhaust(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "corpus":
		cmdCorpus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nocfuzz: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  nocfuzz run     [-n N] [-seed S] [-out DIR] [-duration D] [-restarts R]
                  [-probes P] [-refine K] [-workers W] [-scenario-workers SW]
                  [-keep-going] [-v] [-cpuprofile FILE] [-memprofile FILE]
  nocfuzz exhaust [-n N] [-seed S] [-out DIR] [-mesh M] [-flows F]
                  [-jitter J] [-workers W] [-budget STATES] [-timeout DUR]
                  [-duration D] [-reduce all|none|symmetry|clusters]
                  [-period-min P] [-period-max P] [-require-complete]
                  [-keep-going] [-v]
  nocfuzz replay  -in FILE [-v]
  nocfuzz corpus  [-n N] [-seed S] -out DIR

run     generates N scenarios from S, checks every invariant, shrinks
        violations and writes one artifact per violating scenario to DIR.
exhaust generates N deliberately tiny scenarios (mesh dims <= M, <= F
        flows, short periods) and model-checks each with the explicit-
        state backend: the full release-phasing grid is enumerated and
        the chain search <= exhaustive <= IBN <= XLWX is proved, with
        the search-vs-exhaustive gap written to DIR/gap-report.json.
        The budget is compared against the REDUCED state space (shift-
        symmetry quotient + contention-cluster decomposition, default
        -reduce=all); -reduce=none restores the raw grid enumeration
        for differential validation. Scenarios whose reduced space
        exceeds the state budget are reported as skipped; budget- or
        timeout-truncated enumerations are reported as truncated, never
        as proofs. -period-min/-period-max widen the generated period
        range (longer periods multiply the raw grid — the configs only
        reduction makes reachable). -require-complete exits with code 2
        unless every scenario produced a complete proof (no skips, no
        truncations), which is what the nightly sweep asserts.
        Violations shrink to artifacts exactly as with run.
replay  re-runs the check an artifact records; exit 3 if it reproduces.
corpus  emits go-fuzz seed files (one int64 seed each) for
        internal/oracle's FuzzOracleScenario target.
`)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nocfuzz: %v\n", err)
	os.Exit(1)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		n          = fs.Int("n", 100, "number of scenarios to check")
		seed       = fs.Int64("seed", 1, "root seed; scenario i uses a seed derived from it")
		out        = fs.String("out", "counterexamples", "directory for counterexample artifacts")
		duration   = fs.Int64("duration", 12_000, "simulation horizon per phasing probe, cycles")
		restarts   = fs.Int("restarts", 2, "random restarts per phasing search")
		probes     = fs.Int("probes", 4, "probes per flow and restart")
		refine     = fs.Int("refine", 1, "greedy refinement sweeps per restart")
		workers    = fs.Int("workers", 0, "parallel phasing searches within one scenario (0 = auto)")
		scWorkers  = fs.Int("scenario-workers", 0, "scenarios checked in parallel (0 = all CPUs); per-scenario searches then run serially")
		keepGoing  = fs.Bool("keep-going", false, "check all N scenarios even after violations")
		verbose    = fs.Bool("v", false, "log every scenario, not just violating ones")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	fs.Parse(args)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	// errStop cancels the campaign after the first violating scenario
	// (default mode); it is not a failure of the campaign machinery.
	errStop := errors.New("stop after violation")
	var mu sync.Mutex // serialises shrinking, artifact writes and output
	stats, err := oracle.Campaign(oracle.CampaignConfig{
		Scenarios: *n,
		Seed:      *seed,
		Check: oracle.CheckConfig{
			Duration:      noc.Cycles(*duration),
			Restarts:      *restarts,
			ProbesPerFlow: *probes,
			RefineSteps:   *refine,
			Workers:       *workers,
		},
		Workers: *scWorkers,
	}, func(i int, sc *oracle.Scenario, ccfg oracle.CheckConfig, rep *oracle.Report) error {
		mu.Lock()
		defer mu.Unlock()
		if *verbose {
			fmt.Printf("[%d/%d] %s: %d violations, %d findings, %d sim runs\n",
				i+1, *n, sc, len(rep.Violations), len(rep.Findings), rep.SimRuns)
		}
		if len(rep.Violations) == 0 {
			return nil
		}
		v := rep.Violations[0]
		fmt.Printf("VIOLATION at scenario %d (%s):\n  %s\n", i, sc, v.String())

		fmt.Printf("  shrinking...")
		shrunk, err := oracle.Shrink(sc, v, ccfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf(" %d reductions in %d attempts -> %s\n",
			shrunk.Reductions, shrunk.Attempts, shrunk.Scenario)

		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("ce-%06d.json", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		art := oracle.NewArtifact(sc, ccfg, *oracle.FindViolation(shrunk.Report, v), shrunk)
		if err := art.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  counterexample written to %s\n", path)
		if !*keepGoing {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		fatal(err)
	}
	fmt.Printf("%d scenarios checked, %d sim runs, %d violations\n", stats.Checked, stats.SimRuns, stats.Violations)
	if stats.Violations > 0 {
		stopProf()
		os.Exit(3)
	}
}

// gapRow is one scenario-flow line of the exhaust gap report.
// ViaReduction separates proofs the reductions made affordable from
// proofs over the raw grid, so the report shows which part of the
// matrix only exists because of the symmetry/cluster reductions.
type gapRow struct {
	Scenario     int    `json:"scenario"`
	Seed         int64  `json:"seed"`
	Flow         int    `json:"flow"`
	Search       int64  `json:"search"`
	Exhaustive   int64  `json:"exhaustive"`
	Gap          int64  `json:"gap"`
	Proven       bool   `json:"proven"`
	ViaReduction bool   `json:"via_reduction,omitempty"`
	GridSize     int64  `json:"grid_size"`
	ReducedGrid  int64  `json:"reduced_grid_size"`
	States       int64  `json:"states"`
	Truncation   string `json:"truncation,omitempty"`
}

// gapReport is the DIR/gap-report.json schema: campaign-level coverage
// plus one row per (enumerated scenario, schedulable flow).
type gapReport struct {
	Scenarios    int      `json:"scenarios"`
	Reduction    string   `json:"reduction"`
	Exhausted    int      `json:"exhausted"`
	Complete     int      `json:"complete"`
	ViaReduction int      `json:"via_reduction"`
	Skipped      int      `json:"skipped"`
	Truncated    int      `json:"truncated"`
	SimRuns      int      `json:"sim_runs"`
	StatesSaved  int64    `json:"states_saved"`
	MaxGap       int64    `json:"max_gap"`
	Rows         []gapRow `json:"rows"`
}

func cmdExhaust(args []string) {
	fs := flag.NewFlagSet("exhaust", flag.ExitOnError)
	var (
		n         = fs.Int("n", 50, "number of tiny scenarios to model-check")
		seed      = fs.Int64("seed", 1, "root seed; scenario i uses a seed derived from it")
		out       = fs.String("out", "exhaust-out", "directory for gap-report.json and counterexample artifacts")
		mesh      = fs.Int("mesh", 2, "max mesh dimension of generated scenarios (exhaustive backend accepts <= 4 nodes)")
		flows     = fs.Int("flows", 3, "max flows per scenario (exhaustive backend accepts <= 4)")
		jitter    = fs.Int64("jitter", 0, "max release jitter in cycles (0 = jitter-free scenarios, the certified class)")
		workers   = fs.Int("workers", 0, "scenarios checked in parallel (0 = all CPUs)")
		budget    = fs.Int64("budget", 1<<16, "state budget: max phasings enumerated per scenario; larger grids are skipped")
		timeout   = fs.Duration("timeout", 0, "wall-clock cap for the whole matrix (0 = none); a timed-out matrix reports partial coverage")
		duration  = fs.Int64("duration", 2_000, "simulation horizon of the randomised (jittered) attack, cycles")
		reduce    = fs.String("reduce", "all", "state-space reductions: all, none, symmetry or clusters (budget gates on the reduced size)")
		periodMin = fs.Int64("period-min", 6, "min generated flow period, cycles")
		periodMax = fs.Int64("period-max", 18, "max generated flow period, cycles (the raw grid is the product of the periods)")
		require   = fs.Bool("require-complete", false, "exit 2 unless every scenario yields a complete proof (no skips, no truncations)")
		keepGoing = fs.Bool("keep-going", false, "check all N scenarios even after violations")
		verbose   = fs.Bool("v", false, "log every scenario, not just violating ones")
	)
	fs.Parse(args)

	mode, err := exhaustive.ParseReduction(*reduce)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	gen := oracle.GenConfig{
		MaxDim:          *mesh,
		MaxFlows:        *flows,
		MaxBuf:          4,
		MaxLinkLatency:  1,
		MaxRouteLatency: -1,
		// Short periods keep the phasing grid (the product of the
		// periods) within the state budget; the nightly sweep raises
		// -period-max to sizes only the reduced space can cover.
		PeriodMin: noc.Cycles(*periodMin), PeriodMax: noc.Cycles(*periodMax),
		LenMin: 2, LenMax: 6,
		JitterProb: -1,
		MaxJitter:  noc.Cycles(*jitter),
	}
	if *jitter > 0 {
		// Jittered scenarios still get checked — the analytic bounds
		// absorb the jitter terms, so the chain stays sound — but the
		// certified class remains the jitter-free phasings.
		gen.JitterProb = 0.25
	}

	errStop := errors.New("stop after violation")
	report := gapReport{Scenarios: *n, Reduction: mode.String()}
	var mu sync.Mutex
	stats, err := oracle.Campaign(oracle.CampaignConfig{
		Scenarios: *n,
		Seed:      *seed,
		Gen:       gen,
		Check: oracle.CheckConfig{
			Duration:         noc.Cycles(*duration),
			ExhaustiveStates: *budget,
			ExhaustiveReduce: mode,
		},
		Workers: *workers,
		Context: ctx,
	}, func(i int, sc *oracle.Scenario, ccfg oracle.CheckConfig, rep *oracle.Report) error {
		mu.Lock()
		defer mu.Unlock()
		if rep.Exhaustive == nil {
			report.Skipped++
			if *verbose {
				fmt.Printf("[%d/%d] %s: exhaustive skipped (%v)\n", i+1, *n, sc, rep.Notes)
			}
		} else {
			ex := rep.Exhaustive
			if ex.Complete {
				report.Complete++
				if ex.StatesSaved > 0 {
					report.ViaReduction++
				}
			} else {
				report.Truncated++
			}
			report.StatesSaved += ex.StatesSaved
			for _, g := range ex.Gaps {
				report.Rows = append(report.Rows, gapRow{
					Scenario:     i,
					Seed:         sc.Seed,
					Flow:         g.Flow,
					Search:       int64(g.Search),
					Exhaustive:   int64(g.Exhaustive),
					Gap:          int64(g.Gap),
					Proven:       g.Proven,
					ViaReduction: g.ViaReduction,
					GridSize:     ex.GridSize,
					ReducedGrid:  ex.ReducedGridSize,
					States:       ex.States,
					Truncation:   ex.Truncation,
				})
				if int64(g.Gap) > report.MaxGap {
					report.MaxGap = int64(g.Gap)
				}
			}
			if *verbose {
				fmt.Printf("[%d/%d] %s: %d/%d phasings (raw %d), complete=%v, %d gap rows\n",
					i+1, *n, sc, ex.States, ex.ReducedGridSize, ex.GridSize, ex.Complete, len(ex.Gaps))
			}
		}
		if len(rep.Violations) == 0 {
			return nil
		}
		v := rep.Violations[0]
		fmt.Printf("VIOLATION at scenario %d (%s):\n  %s\n", i, sc, v.String())
		fmt.Printf("  shrinking...")
		shrunk, err := oracle.Shrink(sc, v, ccfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf(" %d reductions in %d attempts -> %s\n",
			shrunk.Reductions, shrunk.Attempts, shrunk.Scenario)
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("ce-%06d.json", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		art := oracle.NewArtifact(sc, ccfg, *oracle.FindViolation(shrunk.Report, v), shrunk)
		if err := art.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  counterexample written to %s\n", path)
		if !*keepGoing {
			return errStop
		}
		return nil
	})
	timedOut := ctx.Err() != nil
	if err != nil && !errors.Is(err, errStop) && !timedOut {
		fatal(err)
	}

	report.Exhausted = stats.Exhausted
	report.SimRuns = stats.SimRuns
	// Deterministic report regardless of completion order.
	sort.Slice(report.Rows, func(a, b int) bool {
		if report.Rows[a].Scenario != report.Rows[b].Scenario {
			return report.Rows[a].Scenario < report.Rows[b].Scenario
		}
		return report.Rows[a].Flow < report.Rows[b].Flow
	})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(*out, "gap-report.json")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("%d/%d scenarios checked: %d enumerated (%d complete proofs, %d via reduction, %d truncated), %d skipped, %d states saved, max search gap %d cycles\n",
		stats.Checked, *n, stats.Exhausted, report.Complete, report.ViaReduction,
		report.Truncated, report.Skipped, report.StatesSaved, report.MaxGap)
	fmt.Printf("gap report written to %s\n", path)
	if timedOut {
		fmt.Printf("TIMED OUT after %s: coverage above is partial, not a proof of the full matrix\n", *timeout)
	}
	if stats.Violations > 0 {
		os.Exit(3)
	}
	if *require && (report.Skipped > 0 || report.Truncated > 0 || timedOut || stats.Checked < *n) {
		fmt.Printf("REQUIRE-COMPLETE FAILED: %d skipped, %d truncated, %d/%d checked\n",
			report.Skipped, report.Truncated, stats.Checked, *n)
		os.Exit(2)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "counterexample artifact to replay (required)")
		verbose = fs.Bool("v", false, "print the full violation list of the replayed check")
	)
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(1)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	art, err := oracle.ReadArtifact(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rep, reproduced, err := art.Replay()
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, v := range rep.Violations {
			fmt.Printf("violation: %s\n", v.String())
		}
		for _, v := range rep.Findings {
			fmt.Printf("finding:   %s\n", v.String())
		}
	}
	if reproduced {
		fmt.Printf("REPRODUCED: %s/%s still violates (%s)\n",
			art.Violation.Class, art.Violation.Invariant, *in)
		os.Exit(3)
	}
	fmt.Printf("not reproduced: %s/%s no longer violates (%s)\n",
		art.Violation.Class, art.Violation.Invariant, *in)
}

func cmdCorpus(args []string) {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	var (
		n    = fs.Int("n", 16, "number of seed files to emit")
		seed = fs.Int64("seed", 1, "root seed the corpus seeds derive from")
		out  = fs.String("out", "", "target corpus directory (required)")
	)
	fs.Parse(args)
	if *out == "" {
		fs.Usage()
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i := 0; i < *n; i++ {
		s := oracle.DeriveSeed(*seed, int64(i))
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\n", s)
		path := filepath.Join(*out, fmt.Sprintf("nocfuzz-%04d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d seed files written to %s\n", *n, *out)
}
