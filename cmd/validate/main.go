// Command validate hunts for counter-examples to the analyses' safety:
// it attacks randomised MPB-prone scenarios with an adversarial phasing
// search and reports, per analysis, how often an observed latency
// exceeded a bound the analysis had certified.
//
// The expected verdict mirrors the paper: SB and SLA get caught
// (multi-point progressive blocking breaks them), XLWX and IBN survive —
// the paper's closing claim that IBN "is the tightest analysis that has
// not been proven optimistic by a counter-example", made executable.
//
// Usage:
//
//	validate -scenarios 100 -seed 1
//	validate -scenarios 500 -duration 120000 -restarts 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormnoc/internal/exp"
	"wormnoc/internal/noc"
)

func main() {
	var (
		scenarios = flag.Int("scenarios", 100, "random scenarios to attack")
		duration  = flag.Int64("duration", 80_000, "simulated cycles per phasing probe")
		restarts  = flag.Int("restarts", 3, "random restarts of the phasing search per flow")
		probes    = flag.Int("probes", 4, "offsets probed per flow per refinement pass")
		seed      = flag.Int64("seed", 1, "hunt seed")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	)
	flag.Parse()

	start := time.Now()
	res, err := exp.RunValidation(exp.ValidationConfig{
		Scenarios:     *scenarios,
		Duration:      noc.Cycles(*duration),
		Restarts:      *restarts,
		ProbesPerFlow: *probes,
		Seed:          *seed,
		Workers:       *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	fmt.Print(res.Table())
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))

	// Exit non-zero if a supposedly safe analysis was broken.
	for a, name := range res.Analyses {
		if (name == "XLWX" || name == "IBN") && res.Violations[a] > 0 {
			fmt.Fprintf(os.Stderr, "validate: COUNTER-EXAMPLE FOUND against %s — please report it\n", name)
			os.Exit(2)
		}
	}
}
