// Command nocserve runs the analysis service: a JSON-over-HTTP server
// (internal/serve) exposing the SB/SLA/XLWX/IBN response-time analyses
// with result caching, admission control and metrics. See docs/API.md
// for the endpoint reference.
//
// Usage:
//
//	nocserve                           # listen on :8080
//	nocserve -addr :9000 -inflight 16  # custom port, shed beyond 16 analyses
//	nocserve -cache 8192 -engines 128  # bigger result/engine caches
//	nocserve -timeout 10s              # default + maximum per-request deadline
//	nocserve -pprof                    # also mount /debug/pprof/
//
// The didactic example round-trips through the service with:
//
//	go run ./cmd/analyze -example > flows.json
//	curl -s localhost:8080/v1/analyze -d "{\"system\": $(cat flows.json), \"method\": \"IBN\"}"
//
// SIGINT/SIGTERM trigger a graceful shutdown: new requests are refused
// with 503 while in-flight analyses drain (bounded by -draintimeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wormnoc/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		inflight     = flag.Int("inflight", 0, "max concurrent analyses before shedding with 429 (0 = 2×CPUs)")
		cache        = flag.Int("cache", 0, "result-cache entries (0 = default 4096)")
		engines      = flag.Int("engines", 0, "warm analysis engines kept (0 = default 64)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default and maximum per-request deadline")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown drain budget")
		batchWorkers = flag.Int("batchworkers", 0, "worker goroutines per batch request (0 = all CPUs)")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nocserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	svc := serve.New(serve.Config{
		MaxInFlight:     *inflight,
		ResultCacheSize: *cache,
		EngineCacheSize: *engines,
		DefaultTimeout:  *timeout,
		BatchWorkers:    *batchWorkers,
		EnablePprof:     *pprofFlag,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("nocserve: listening on %s (POST /v1/analyze, POST /v1/batch, GET /v1/methods, GET /metrics)", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("nocserve: %v", err)
	case sig := <-sigc:
		log.Printf("nocserve: %v received, draining in-flight analyses (up to %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("nocserve: drain incomplete: %v", err)
	}
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Printf("nocserve: forced close: %v", err)
	}
	log.Print("nocserve: bye")
}
