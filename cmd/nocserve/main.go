// Command nocserve runs the analysis service: a JSON-over-HTTP server
// (internal/serve) exposing the SB/SLA/XLWX/IBN response-time analyses
// with result caching, admission control and metrics. See docs/API.md
// for the endpoint reference.
//
// Usage:
//
//	nocserve                           # listen on :8080
//	nocserve -addr :9000 -inflight 16  # custom port, shed beyond 16 analyses
//	nocserve -cache 8192 -engines 128  # bigger result/engine caches
//	nocserve -timeout 10s              # default + maximum per-request deadline
//	nocserve -pprof                    # also mount /debug/pprof/
//
// A serving fleet (docs/DESIGN.md §14) is N worker processes fronted
// by one coordinator that shards systems over them by canonical key,
// with hedged fan-out, failover and health-probe membership:
//
//	nocserve -addr :8081 &
//	nocserve -addr :8082 &
//	nocserve -addr :8083 &
//	nocserve -mode coordinator -addr :8080 \
//	    -backends w1=http://127.0.0.1:8081,w2=http://127.0.0.1:8082,w3=http://127.0.0.1:8083
//
// The didactic example round-trips through the service with:
//
//	go run ./cmd/analyze -example > flows.json
//	curl -s localhost:8080/v1/analyze -d "{\"system\": $(cat flows.json), \"method\": \"IBN\"}"
//
// SIGINT/SIGTERM trigger a graceful shutdown: new requests are refused
// with 503 while in-flight analyses drain (bounded by -draintimeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wormnoc/internal/cluster"
	"wormnoc/internal/serve"
)

// parseBackends parses the -backends flag: comma-separated name=url
// pairs (bare URLs get positional names w1, w2, …).
func parseBackends(spec string) ([]cluster.Backend, error) {
	var out []cluster.Backend
	for i, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, url, found := strings.Cut(field, "=")
		if !found {
			name, url = fmt.Sprintf("w%d", i+1), field
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("backend %q: want name=url", field)
		}
		out = append(out, cluster.Backend{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("coordinator mode needs -backends name=url[,name=url...]")
	}
	return out, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "worker", `"worker" (standalone server) or "coordinator" (front a fleet of workers)`)
		backendsFlag = flag.String("backends", "", "coordinator mode: comma-separated name=url worker list")
		replicas     = flag.Int("replicas", 0, "coordinator mode: shard replica-chain length (0 = default 2)")
		hedgeDelay   = flag.Duration("hedge", 0, "coordinator mode: fixed hedge delay (0 = adaptive latency quantile)")
		probeEvery   = flag.Duration("probeinterval", 0, "coordinator mode: health-probe period (0 = default 1s)")
		inflight     = flag.Int("inflight", 0, "max concurrent analyses before shedding with 429 (0 = 2×CPUs)")
		cache        = flag.Int("cache", 0, "result-cache entries (0 = default 4096)")
		engines      = flag.Int("engines", 0, "warm analysis engines kept (0 = default 64)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default and maximum per-request deadline")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown drain budget")
		batchWorkers = flag.Int("batchworkers", 0, "worker goroutines per batch request (0 = all CPUs)")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nocserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	serveCfg := serve.Config{
		MaxInFlight:     *inflight,
		ResultCacheSize: *cache,
		EngineCacheSize: *engines,
		DefaultTimeout:  *timeout,
		BatchWorkers:    *batchWorkers,
		EnablePprof:     *pprofFlag,
	}

	var handler http.Handler
	var shutdown func(context.Context) error
	probeCtx, stopProbing := context.WithCancel(context.Background())
	defer stopProbing()

	switch *mode {
	case "worker":
		svc := serve.New(serveCfg)
		handler = svc.Handler()
		shutdown = svc.Shutdown
	case "coordinator":
		backends, err := parseBackends(*backendsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocserve: %v\n", err)
			os.Exit(2)
		}
		coord, err := cluster.New(cluster.Config{
			Backends:      backends,
			Local:         serveCfg,
			Replicas:      *replicas,
			HedgeDelay:    *hedgeDelay,
			ProbeInterval: *probeEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocserve: %v\n", err)
			os.Exit(2)
		}
		coord.ProbeAll(probeCtx)
		coord.StartProbing(probeCtx)
		handler = coord.Handler()
		shutdown = coord.Shutdown
		log.Printf("nocserve: coordinating %d backends", len(backends))
	default:
		fmt.Fprintf(os.Stderr, "nocserve: unknown -mode %q (want worker or coordinator)\n", *mode)
		os.Exit(2)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("nocserve: %s listening on %s (POST /v1/analyze, POST /v1/batch, POST /v1/whatif, GET /v1/methods, GET /metrics)", *mode, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("nocserve: %v", err)
	case sig := <-sigc:
		log.Printf("nocserve: %v received, draining in-flight analyses (up to %v)", sig, *drainTimeout)
	}

	stopProbing()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		log.Printf("nocserve: drain incomplete: %v", err)
	}
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Printf("nocserve: forced close: %v", err)
	}
	log.Print("nocserve: bye")
}
