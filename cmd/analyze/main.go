// Command analyze runs a worst-case response-time analysis over a flow
// set described as JSON (see internal/traffic.Document for the schema)
// and prints per-flow latency bounds against deadlines.
//
// Usage:
//
//	analyze -in flows.json -method IBN
//	analyze -in flows.json -method IBN -buf 2
//	analyze -in flows.json -all -v -stats    # all analyses + engine telemetry
//	generate-something | analyze -method XLWX
//	analyze -example > flows.json            # emit the didactic example
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func main() {
	var (
		in       = flag.String("in", "-", "input JSON file (- = stdin)")
		method   = flag.String("method", "IBN", "analysis: SB, SLA, XLWX or IBN")
		buf      = flag.Int("buf", 0, "override buffer depth for IBN (0 = platform's)")
		all      = flag.Bool("all", false, "run all three analyses side by side")
		example  = flag.Bool("example", false, "emit the didactic example as JSON and exit")
		explain  = flag.String("explain", "", "decompose this flow's bound (name or index) term by term")
		headroom = flag.Bool("headroom", false, "report the packet-length scaling headroom per analysis")
		hotspots = flag.Int("hotspots", 0, "print the N most loaded links")
		verbose  = flag.Bool("v", false, "print per-analysis progress to stderr")
		stats    = flag.Bool("stats", false, "print analysis-engine telemetry after the run")
	)
	flag.Parse()

	// Validate the method selector before touching any input: a typo'd
	// -method must fail with usage, not silently analyse with a default.
	var selected core.Method
	if !*all {
		m, err := core.ParseMethod(*method)
		if err != nil {
			usageError(err)
		}
		selected = m
	}

	if *example {
		if err := workload.Didactic(2).WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var r io.Reader
	if *in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	sys, err := traffic.ReadJSON(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("platform: %s\n", sys.Topology())
	fmt.Printf("flows: %d, aggregate link utilisation: %.3f\n\n", sys.NumFlows(), sys.Utilisation())

	var specs []struct {
		name string
		opt  core.Options
	}
	if *all {
		specs = append(specs,
			struct {
				name string
				opt  core.Options
			}{"SB", core.Options{Method: core.SB}},
			struct {
				name string
				opt  core.Options
			}{"XLWX", core.Options{Method: core.XLWX}},
			struct {
				name string
				opt  core.Options
			}{"IBN", core.Options{Method: core.IBN, BufDepth: *buf}},
		)
	} else {
		specs = append(specs, struct {
			name string
			opt  core.Options
		}{selected.String(), core.Options{Method: selected, BufDepth: *buf}})
	}

	// One engine serves every analysis: the interference sets are built
	// once and the memo arenas are reused across methods.
	eng := core.NewEngine(sys)
	results := make([]*core.Result, len(specs))
	for i, s := range specs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "analyzing with %s (%d/%d)...\n", s.name, i+1, len(specs))
		}
		results[i], err = eng.Analyze(s.opt)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%-12s %4s %10s %10s", "flow", "P", "C", "D")
	for _, s := range specs {
		fmt.Printf(" %12s", "R_"+s.name)
	}
	fmt.Println()
	for i := 0; i < sys.NumFlows(); i++ {
		f := sys.Flow(i)
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("flow%d", i)
		}
		fmt.Printf("%-12s %4d %10d %10d", name, f.Priority, sys.C(i), f.Deadline)
		for _, res := range results {
			fr := res.Flows[i]
			switch fr.Status {
			case core.Schedulable:
				fmt.Printf(" %12d", fr.R)
			case core.DeadlineMiss:
				fmt.Printf(" %11d!", fr.R)
			default:
				fmt.Printf(" %12s", fr.Status)
			}
		}
		fmt.Println()
	}
	fmt.Println()
	if *explain != "" {
		idx := -1
		for i := 0; i < sys.NumFlows(); i++ {
			if sys.Flow(i).Name == *explain {
				idx = i
				break
			}
		}
		if idx < 0 {
			if n, err := strconv.Atoi(*explain); err == nil && n >= 0 && n < sys.NumFlows() {
				idx = n
			}
		}
		if idx < 0 {
			fatal(fmt.Errorf("no flow named or indexed %q", *explain))
		}
		for _, s := range specs {
			b, err := eng.Explain(s.opt, idx)
			if err != nil {
				fatal(err)
			}
			fmt.Println(b)
		}
	}
	if *hotspots > 0 {
		loads := sys.LinkLoads()
		type hot struct {
			link int
			load float64
		}
		hots := make([]hot, 0, len(loads))
		for l, u := range loads {
			if u > 0 {
				hots = append(hots, hot{l, u})
			}
		}
		sort.Slice(hots, func(a, b int) bool { return hots[a].load > hots[b].load })
		if len(hots) > *hotspots {
			hots = hots[:*hotspots]
		}
		fmt.Println("hottest links (long-run utilisation):")
		for _, h := range hots {
			fmt.Printf("  %-12s %6.1f%%\n", sys.Topology().Link(noc.LinkID(h.link)), 100*h.load)
		}
		fmt.Println()
	}
	if *headroom {
		fmt.Println("packet-length scaling headroom (factor before the guarantee breaks):")
		for _, s := range specs {
			limit, err := core.ScaleLimit(sys, s.opt, 0.05, 64, 0.01)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-6s ×%.2f\n", s.name, limit)
		}
		fmt.Println()
	}
	exit := 0
	for i, s := range specs {
		verdict := "SCHEDULABLE"
		if !results[i].Schedulable {
			verdict = "NOT schedulable"
			exit = 2
		}
		fmt.Printf("%-6s: flow set is %s\n", s.name, verdict)
	}
	if *stats {
		fmt.Println()
		fmt.Print(eng.Telemetry().String())
	}
	os.Exit(exit)
}

// usageError reports a bad flag value together with the usage text and
// exits with the conventional flag-error status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
