// Command sweep regenerates the schedulability experiments of Figure 4 of
// the paper (and the buffer-size ablation discussed in its Section VI):
// synthetic flow sets of increasing size are analysed with SB, XLWX and
// IBN at several buffer depths, reporting the percentage of fully
// schedulable sets.
//
// Usage:
//
//	sweep -mesh 4x4                       # Figure 4(a)
//	sweep -mesh 8x8                       # Figure 4(b)
//	sweep -mesh 4x4 -buffers              # buffer-size ablation
//	sweep -mesh 4x4 -variant eq7          # Eq.7-vs-Eq.8 ablation
//	sweep -mesh 4x4 -flows 40:430:30 -sets 100 -seed 1 -csv out.csv
//	sweep -mesh 4x4 -v -stats               # progress lines + engine telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wormnoc/internal/core"
	"wormnoc/internal/exp"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

func main() {
	var (
		mesh    = flag.String("mesh", "4x4", "mesh shape WxH")
		flows   = flag.String("flows", "", "flow counts: from:to:step or comma list (default per figure)")
		sets    = flag.Int("sets", 100, "flow sets per point")
		seed    = flag.Int64("seed", 1, "experiment seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		csvPath = flag.String("csv", "", "also write CSV to this file")
		buffers = flag.Bool("buffers", false, "run the buffer-size ablation instead of Figure 4")
		tight   = flag.Bool("tightness", false, "run the per-flow bound-tightness study instead of Figure 4")
		avgcase = flag.Bool("avgcase", false, "run the average-case-vs-guarantee buffer study instead of Figure 4")
		chart   = flag.Bool("chart", false, "also render the sweep as an ASCII line chart (the paper's figure style)")
		variant = flag.String("variant", "", "extra IBN ablation column: eq7 or nofallback")
		verbose = flag.Bool("v", false, "print task progress to stderr")
		stats   = flag.Bool("stats", false, "print analysis-engine telemetry after the run")
		pmin    = flag.Int64("pmin", int64(workload.DefaultPeriodMin), "minimum period (cycles)")
		pmax    = flag.Int64("pmax", int64(workload.DefaultPeriodMax), "maximum period (cycles)")
		lmin    = flag.Int("lmin", workload.DefaultLenMin, "minimum packet length (flits)")
		lmax    = flag.Int("lmax", workload.DefaultLenMax, "maximum packet length (flits)")
	)
	flag.Parse()

	// Validate -variant up front so a typo fails with usage even when the
	// selected mode (e.g. -buffers) would never consult it.
	switch *variant {
	case "", "eq7", "nofallback", "sla":
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown -variant %q (want eq7, nofallback or sla)\n", *variant)
		flag.Usage()
		os.Exit(2)
	}

	w, h, err := parseMesh(*mesh)
	if err != nil {
		fatal(err)
	}
	synth := workload.SynthConfig{
		PeriodMin: noc.Cycles(*pmin), PeriodMax: noc.Cycles(*pmax),
		LenMin: *lmin, LenMax: *lmax,
	}
	counts, err := parseCounts(*flows, w, h)
	if err != nil {
		fatal(err)
	}
	runner := newRunner(*workers, *verbose)

	start := time.Now()
	if *avgcase {
		n := 50
		if len(counts) > 0 {
			n = counts[0]
		}
		res, err := exp.RunAvgCase(exp.AvgCaseConfig{
			Width: w, Height: h,
			NumFlows:  n,
			Sets:      *sets,
			BufDepths: exp.DefaultBufDepths(),
			Synth:     synth,
			Seed:      *seed,
			Runner:    runner,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Table())
		printStats(*stats, res.Telemetry)
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *tight {
		res, err := exp.RunTightness(exp.TightnessConfig{
			Width: w, Height: h,
			FlowCounts:   counts,
			SetsPerPoint: *sets,
			Synth:        synth,
			Seed:         *seed,
			Runner:       runner,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Table())
		printStats(*stats, res.Telemetry)
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	var result *exp.SweepResult
	if *buffers {
		result, err = exp.RunBufferAblation(exp.BufferAblationConfig{
			Width: w, Height: h,
			FlowCounts:   counts,
			SetsPerPoint: *sets,
			Synth:        synth,
			Seed:         *seed,
			Runner:       runner,
		})
		if err == nil {
			if v := exp.CheckBufferMonotonicity(result); v != "" {
				fmt.Fprintf(os.Stderr, "warning: buffer monotonicity violated: %s\n", v)
			}
		}
	} else {
		analyses := exp.StandardAnalyses()
		switch *variant {
		case "":
		case "eq7":
			analyses = append(analyses, exp.AnalysisSpec{
				Name:    "IBN2eq7",
				Options: core.Options{Method: core.IBN, BufDepth: 2, Eq7: true},
			})
		case "nofallback":
			analyses = append(analyses, exp.AnalysisSpec{
				Name:    "IBN2nofb",
				Options: core.Options{Method: core.IBN, BufDepth: 2, NoUpstreamFallback: true},
			})
		case "sla":
			analyses = append(analyses,
				exp.AnalysisSpec{Name: "SLA2", Options: core.Options{Method: core.SLA, BufDepth: 2}},
				exp.AnalysisSpec{Name: "SLA100", Options: core.Options{Method: core.SLA, BufDepth: 100}},
			)
		}
		result, err = exp.RunSweep(exp.SweepConfig{
			Width: w, Height: h,
			FlowCounts:   counts,
			SetsPerPoint: *sets,
			Analyses:     analyses,
			Synth:        synth,
			Seed:         *seed,
			Runner:       runner,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(result.Table())
	if *chart {
		fmt.Println()
		fmt.Print(result.Chart(20))
	}
	printStats(*stats, result.Telemetry)
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(result.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
}

func parseMesh(s string) (w, h int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -mesh %q, want WxH", s)
	}
	w, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -mesh %q: %v", s, err)
	}
	h, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -mesh %q: %v", s, err)
	}
	return w, h, nil
}

// parseCounts parses "from:to:step" or "a,b,c"; empty selects the
// figure's defaults for the mesh.
func parseCounts(s string, w, h int) ([]int, error) {
	if s == "" {
		if w == 8 && h == 8 {
			return exp.Fig4bConfig(0).FlowCounts, nil
		}
		return exp.Fig4aConfig(0).FlowCounts, nil
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -flows %q, want from:to:step", s)
		}
		var v [3]int
		for i, p := range parts {
			x, err := strconv.Atoi(p)
			if err != nil || x < 1 {
				return nil, fmt.Errorf("bad -flows %q", s)
			}
			v[i] = x
		}
		var out []int
		for n := v[0]; n <= v[1]; n += v[2] {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		x, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || x < 1 {
			return nil, fmt.Errorf("bad -flows %q", s)
		}
		out = append(out, x)
	}
	return out, nil
}

// newRunner builds the shared task runner; with -v it reports progress
// on stderr as tasks finish.
func newRunner(workers int, verbose bool) *exp.Runner {
	r := &exp.Runner{Workers: workers}
	if verbose {
		r.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return r
}

func printStats(enabled bool, tel core.Telemetry) {
	if enabled {
		fmt.Print(tel.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
