// Command nocload is the serving tier's load harness: it drives a
// nocserve worker or cluster coordinator with a zipf-skewed mix of
// analyze, batch and what-if traffic, verifies every response against
// a locally computed oracle, and reports latency percentiles,
// throughput, shed/error rates and the coordinator's hedge rate in
// `go test -bench` format — the input cmd/benchjson turns into
// results/BENCH_serve.json, where BenchmarkServeSingle/<op> lines pair
// with BenchmarkServeFleet/<op> lines (single node vs fleet, the
// numbers the coordinator is held to).
//
// Closed loop (fixed concurrency, the capacity-probe shape):
//
//	nocload -target http://localhost:8080 -label ServeFleet -conc 16 -duration 10s
//
// Open loop (fixed arrival rate, the latency-under-load shape —
// arrivals do not slow down when the server does, so queueing delay is
// visible instead of hidden):
//
//	nocload -target http://localhost:8080 -rate 200 -duration 10s
//
// Correctness is not sampled, it is total: every 200 response is
// compared bit-for-bit (wall time and cache provenance aside) against
// an in-process single-node analysis of the same system. Any mismatch
// is an "incorrect" result, and any incorrect result fails the run —
// this is the harness the fleet-chaos CI job points at a cluster while
// killing workers.
//
// Exit status: 0 on a clean run, 1 when a bound is violated
// (incorrect > 0, -maxerrrate, -maxp99, -minthroughput), 2 on usage
// errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wormnoc/internal/oracle"
	"wormnoc/internal/serve"
	"wormnoc/internal/traffic"
)

// op is one workload operation kind.
type op int

const (
	opAnalyze op = iota
	opBatch
	opWhatIf
	opKinds
)

func (o op) String() string { return [...]string{"analyze", "batch", "whatif"}[o] }

// outcome classifies one request.
type outcome int

const (
	outOK        outcome = iota
	outShed              // 429/503: admission control or a draining fleet
	outErr               // transport error or unexpected status
	outIncorrect         // 200 with a payload diverging from the oracle
)

// sample is one completed request.
type sample struct {
	op      op
	outcome outcome
	latency time.Duration
}

// workload holds the generated system population and the per-system
// oracle answers every response is checked against.
type workload struct {
	docs    []traffic.Document
	method  string
	deltas  []serve.DeltaSpec
	analyze [][]byte // normalized expected /v1/analyze body per system
	whatif  [][]byte // normalized expected /v1/whatif body per system
}

// normalizeAnalyze zeroes the run-dependent fields of an analyze
// response in place (wall time, cache provenance).
func normalizeAnalyze(raw json.RawMessage) (json.RawMessage, error) {
	var resp serve.AnalyzeResponse
	if err := strictUnmarshal(raw, &resp); err != nil {
		return nil, err
	}
	resp.ElapsedUs = 0
	resp.Cached = false
	return json.Marshal(&resp)
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// normalizeWhatIf zeroes the run-dependent fields of a what-if
// response: per-step wall time and cache provenance, plus the chain's
// cache/engine observability (a warm fleet legitimately reports
// different cache_hits than a cold oracle).
func normalizeWhatIf(raw json.RawMessage) (json.RawMessage, error) {
	var resp serve.WhatIfResponse
	if err := strictUnmarshal(raw, &resp); err != nil {
		return nil, err
	}
	for i := range resp.Steps {
		if resp.Steps[i].AnalyzeResponse != nil {
			resp.Steps[i].ElapsedUs = 0
			resp.Steps[i].Cached = false
		}
	}
	resp.CacheHits = 0
	resp.FullRuns, resp.PartialRuns = 0, 0
	resp.FlowsReanalyzed, resp.FlowsSkipped = 0, 0
	resp.WarmAccepted = 0
	return json.Marshal(&resp)
}

// buildWorkload generates the system population and computes the
// oracle answers on an in-process single-node server.
func buildWorkload(seed int64, systems int, method string) (*workload, error) {
	w := &workload{
		method: method,
		deltas: []serve.DeltaSpec{{Kind: "buf", BufDepth: 4}, {Kind: "buf", BufDepth: 6}},
	}
	for i := 0; i < systems; i++ {
		w.docs = append(w.docs, oracle.Generate(seed+int64(i), oracle.GenConfig{}).Doc)
	}
	local := serve.New(serve.Config{})
	h := local.Handler()
	post := func(path string, body any) (int, []byte, error) {
		payload, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes(), nil
	}
	for i, doc := range w.docs {
		status, body, err := post("/v1/analyze", serve.AnalyzeRequest{System: doc, Method: method})
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("oracle analyze of system %d: status %d, %v", i, status, err)
		}
		norm, err := normalizeAnalyze(body)
		if err != nil {
			return nil, fmt.Errorf("oracle analyze of system %d: %w", i, err)
		}
		w.analyze = append(w.analyze, norm)

		status, body, err = post("/v1/whatif", serve.WhatIfRequest{System: &doc, Method: method, Deltas: w.deltas})
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("oracle whatif of system %d: status %d, %v", i, status, err)
		}
		norm, err = normalizeWhatIf(body)
		if err != nil {
			return nil, fmt.Errorf("oracle whatif of system %d: %w", i, err)
		}
		w.whatif = append(w.whatif, norm)
	}
	return w, nil
}

// mix is the analyze/batch/whatif weighting.
type mix [opKinds]int

func parseMix(spec string) (mix, error) {
	var m mix
	for _, field := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(field), "=")
		if !found {
			return m, fmt.Errorf("mix field %q: want op=weight", field)
		}
		var weight int
		if _, err := fmt.Sscanf(val, "%d", &weight); err != nil || weight < 0 {
			return m, fmt.Errorf("mix field %q: bad weight", field)
		}
		switch name {
		case "analyze":
			m[opAnalyze] = weight
		case "batch":
			m[opBatch] = weight
		case "whatif":
			m[opWhatIf] = weight
		default:
			return m, fmt.Errorf("mix field %q: unknown op (want analyze, batch or whatif)", field)
		}
	}
	if m[opAnalyze]+m[opBatch]+m[opWhatIf] == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}

func (m mix) pick(rng *rand.Rand) op {
	total := m[opAnalyze] + m[opBatch] + m[opWhatIf]
	r := rng.Intn(total)
	for o := opAnalyze; o < opKinds; o++ {
		if r < m[o] {
			return o
		}
		r -= m[o]
	}
	return opAnalyze
}

// loader drives the target and verifies responses.
type loader struct {
	target    string
	client    *http.Client
	work      *workload
	mix       mix
	zipfS     float64
	batchSize int
	timeoutMs int64

	mu      sync.Mutex
	samples []sample
	errLog  []string
}

// picker returns this goroutine's system-popularity sampler: zipf-
// skewed when -zipf > 1 (a hot working set, the cache-friendly and
// shard-hotspot shape), uniform otherwise.
func (l *loader) picker(rng *rand.Rand) func() int {
	n := uint64(len(l.work.docs))
	if l.zipfS > 1 {
		z := rand.NewZipf(rng, l.zipfS, 1, n-1)
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(int(n)) }
}

func (l *loader) record(s sample) {
	l.mu.Lock()
	l.samples = append(l.samples, s)
	l.mu.Unlock()
}

// doOne issues one operation and verifies the response. The returned
// sample is already recorded.
func (l *loader) doOne(ctx context.Context, o op, pick func() int) {
	var (
		path string
		body any
		sys  int
	)
	switch o {
	case opAnalyze:
		sys = pick()
		path = "/v1/analyze"
		body = serve.AnalyzeRequest{System: l.work.docs[sys], Method: l.work.method, TimeoutMs: l.timeoutMs}
	case opWhatIf:
		sys = pick()
		path = "/v1/whatif"
		body = serve.WhatIfRequest{System: &l.work.docs[sys], Method: l.work.method, Deltas: l.work.deltas, TimeoutMs: l.timeoutMs}
	case opBatch:
		path = "/v1/batch"
		items := make([]int, l.batchSize)
		docs := make([]traffic.Document, l.batchSize)
		for i := range items {
			items[i] = pick()
			docs[i] = l.work.docs[items[i]]
		}
		body = serve.BatchRequest{Systems: docs, Method: l.work.method, TimeoutMs: l.timeoutMs}
		l.doBatch(ctx, path, body, items)
		return
	}
	start := time.Now()
	status, respBody, err := l.post(ctx, path, body)
	lat := time.Since(start)
	if err != nil && ctx.Err() != nil {
		// The run deadline cancelled this request mid-flight; that is
		// the harness stopping, not the server failing.
		return
	}
	out := l.classify(o, sys, status, respBody, err)
	if out == outErr {
		l.note("%s of system %d: status %d, err %v", o, sys, status, err)
	} else if out == outIncorrect {
		l.note("%s of system %d DIVERGED from oracle: %.200s", o, sys, respBody)
	}
	l.record(sample{op: o, outcome: out, latency: lat})
}

func (l *loader) doBatch(ctx context.Context, path string, body any, items []int) {
	start := time.Now()
	status, respBody, err := l.post(ctx, path, body)
	lat := time.Since(start)
	if err != nil && ctx.Err() != nil {
		return
	}
	out := outOK
	switch {
	case err != nil:
		out = outErr
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		out = outShed
	case status != http.StatusOK:
		out = outErr
	default:
		var resp serve.BatchResponse
		if err := json.Unmarshal(respBody, &resp); err != nil || len(resp.Results) != len(items) {
			out = outIncorrect
			break
		}
		for i, sys := range items {
			item := resp.Results[i]
			if item.AnalyzeResponse == nil {
				// A shed/timed-out item is a degradation, not a wrong
				// answer; any other per-item error is.
				if item.Code == "transient" || item.Code == "timeout" {
					out = outShed
				} else {
					out = outIncorrect
					l.note("batch item %d (system %d) failed: %s %s", i, sys, item.Code, item.Error)
				}
				continue
			}
			raw, err := json.Marshal(item.AnalyzeResponse)
			if err != nil {
				out = outIncorrect
				continue
			}
			norm, err := normalizeAnalyze(raw)
			if err != nil || !bytes.Equal(norm, l.work.analyze[sys]) {
				out = outIncorrect
				l.note("batch item %d (system %d) DIVERGED from oracle", i, sys)
			}
		}
	}
	if out == outErr {
		l.note("batch: status %d, err %v", status, err)
	}
	l.record(sample{op: opBatch, outcome: out, latency: lat})
}

// note keeps the first few error details for the run summary, so a
// failing run says what went wrong, not just how often.
func (l *loader) note(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.errLog) < 10 {
		l.errLog = append(l.errLog, fmt.Sprintf(format, args...))
	}
}

func (l *loader) classify(o op, sys, status int, respBody []byte, err error) outcome {
	switch {
	case err != nil:
		return outErr
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return outShed
	case status != http.StatusOK:
		return outErr
	}
	var norm json.RawMessage
	var expect []byte
	var nerr error
	switch o {
	case opAnalyze:
		norm, nerr = normalizeAnalyze(respBody)
		expect = l.work.analyze[sys]
	case opWhatIf:
		norm, nerr = normalizeWhatIf(respBody)
		expect = l.work.whatif[sys]
	}
	if nerr != nil || !bytes.Equal(norm, expect) {
		return outIncorrect
	}
	return outOK
}

func (l *loader) post(ctx context.Context, path string, body any) (int, []byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.target+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// runClosed drives conc workers, each issuing its next request as soon
// as the previous one completes, until the deadline.
func (l *loader) runClosed(ctx context.Context, conc int, seed int64) {
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			pick := l.picker(rng)
			for ctx.Err() == nil {
				l.doOne(ctx, l.mix.pick(rng), pick)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen issues requests at a fixed arrival rate regardless of how
// fast the target answers (bounded by maxOutstanding so a stalled
// target cannot exhaust memory; arrivals dropped at that bound count
// as errors — the server has fallen that far behind).
func (l *loader) runOpen(ctx context.Context, rate float64, seed int64) {
	const maxOutstanding = 4096
	interval := time.Duration(float64(time.Second) / rate)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	rng := rand.New(rand.NewSource(seed))
	pick := l.picker(rng)
	var outstanding int64
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			if atomic.LoadInt64(&outstanding) >= maxOutstanding {
				l.record(sample{op: l.mix.pick(rng), outcome: outErr})
				continue
			}
			o := l.mix.pick(rng)
			sys := pick()
			atomic.AddInt64(&outstanding, 1)
			wg.Add(1)
			go func(o op, sys int) {
				defer wg.Done()
				defer atomic.AddInt64(&outstanding, -1)
				l.doOne(ctx, o, func() int { return sys })
			}(o, sys)
		}
	}
}

// clusterCounters scrapes the coordinator-side fan-out counters from
// /metrics (zero for a standalone worker, whose metrics carry no
// cluster section).
func (l *loader) clusterCounters(ctx context.Context) (hedges, retries, fallbacks int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, l.target+"/metrics", nil)
	if err != nil {
		return 0, 0, 0
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, 0, 0
	}
	defer resp.Body.Close()
	var snap struct {
		Cluster *serve.ClusterStatus `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil || snap.Cluster == nil {
		return 0, 0, 0
	}
	return snap.Cluster.HedgesFired, snap.Cluster.Retries, snap.Cluster.LocalFallbacks
}

// percentile returns the p-th percentile (0 < p ≤ 100) of sorted
// latencies in microseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank].Microseconds())
}

type opStats struct {
	count, ok, shed, errs, incorrect int
	lat                              []time.Duration
}

func main() {
	var (
		target     = flag.String("target", "", "base URL of the nocserve worker or coordinator to load (required)")
		label      = flag.String("label", "ServeSingle", "benchmark family prefix: ServeSingle (one worker) or ServeFleet (coordinator)")
		duration   = flag.Duration("duration", 10*time.Second, "load duration")
		conc       = flag.Int("conc", 8, "closed-loop concurrency (ignored when -rate > 0)")
		rate       = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		systems    = flag.Int("systems", 64, "distinct generated systems in the working set")
		seed       = flag.Int64("seed", 1, "workload generator seed")
		zipfS      = flag.Float64("zipf", 1.2, "zipf skew of system popularity (≤ 1 = uniform)")
		mixFlag    = flag.String("mix", "analyze=70,batch=15,whatif=15", "op mix weights")
		batchSize  = flag.Int("batchsize", 8, "systems per batch request")
		method     = flag.String("method", "IBN", "analysis method to request")
		timeoutMs  = flag.Int64("timeoutms", 0, "per-request timeout_ms (0 = server default)")
		maxErrRate = flag.Float64("maxerrrate", 1, "fail (exit 1) when error rate exceeds this fraction")
		maxP99     = flag.Duration("maxp99", 0, "fail (exit 1) when overall p99 exceeds this (0 = no bound)")
		minReqs    = flag.Int("minreqs", 1, "fail (exit 1) when fewer requests complete")
	)
	flag.Parse()
	if *target == "" || flag.NArg() > 0 {
		flag.Usage()
		os.Exit(2)
	}
	m, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocload: %v\n", err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "nocload: generating %d systems and oracle answers (seed %d)...\n", *systems, *seed)
	work, err := buildWorkload(*seed, *systems, *method)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocload: %v\n", err)
		os.Exit(2)
	}

	l := &loader{
		target:    strings.TrimSuffix(*target, "/"),
		client:    &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}},
		work:      work,
		mix:       m,
		zipfS:     *zipfS,
		batchSize: *batchSize,
		timeoutMs: *timeoutMs,
	}

	hedges0, retries0, fallbacks0 := l.clusterCounters(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	start := time.Now()
	if *rate > 0 {
		l.runOpen(ctx, *rate, *seed)
	} else {
		l.runClosed(ctx, *conc, *seed)
	}
	cancel()
	elapsed := time.Since(start)
	hedges1, retries1, fallbacks1 := l.clusterCounters(context.Background())

	// Aggregate per op and overall ("mixed").
	perOp := make([]opStats, opKinds)
	var all opStats
	for _, s := range l.samples {
		for _, st := range []*opStats{&perOp[s.op], &all} {
			st.count++
			switch s.outcome {
			case outOK:
				st.ok++
			case outShed:
				st.shed++
			case outErr:
				st.errs++
			case outIncorrect:
				st.incorrect++
			}
			if s.latency > 0 {
				st.lat = append(st.lat, s.latency)
			}
		}
	}
	hedgeRate := 0.0
	if all.count > 0 {
		hedgeRate = float64(hedges1-hedges0) / float64(all.count)
	}

	emit := func(name string, st *opStats) {
		if st.count == 0 {
			return
		}
		sort.Slice(st.lat, func(i, j int) bool { return st.lat[i] < st.lat[j] })
		var mean float64
		for _, d := range st.lat {
			mean += float64(d.Nanoseconds())
		}
		if len(st.lat) > 0 {
			mean /= float64(len(st.lat))
		}
		fmt.Printf("Benchmark%s/%s \t%8d\t%12.0f ns/op\t%10.0f p50_us\t%10.0f p99_us\t%10.0f p999_us\t%7.4f shed_rate\t%7.4f err_rate\t%7.4f hedge_rate\t%10.1f req/s\n",
			*label, name, st.count, mean,
			percentile(st.lat, 50), percentile(st.lat, 99), percentile(st.lat, 99.9),
			float64(st.shed)/float64(st.count),
			float64(st.errs+st.incorrect)/float64(st.count),
			hedgeRate,
			float64(st.count)/elapsed.Seconds())
	}
	emit("mixed", &all)
	for o := opAnalyze; o < opKinds; o++ {
		emit(o.String(), &perOp[o])
	}
	fmt.Fprintf(os.Stderr,
		"nocload: %d requests in %v — %d ok, %d shed, %d errors, %d incorrect; fleet deltas: %d hedges, %d retries, %d local fallbacks\n",
		all.count, elapsed.Round(time.Millisecond), all.ok, all.shed, all.errs, all.incorrect,
		hedges1-hedges0, retries1-retries0, fallbacks1-fallbacks0)
	for _, line := range l.errLog {
		fmt.Fprintf(os.Stderr, "nocload:   %s\n", line)
	}

	failed := false
	if all.incorrect > 0 {
		fmt.Fprintf(os.Stderr, "nocload: FAIL: %d responses diverged from the local oracle\n", all.incorrect)
		failed = true
	}
	if all.count < *minReqs {
		fmt.Fprintf(os.Stderr, "nocload: FAIL: only %d requests completed (want ≥ %d)\n", all.count, *minReqs)
		failed = true
	}
	if errRate := float64(all.errs) / float64(max(all.count, 1)); errRate > *maxErrRate {
		fmt.Fprintf(os.Stderr, "nocload: FAIL: error rate %.4f exceeds %.4f\n", errRate, *maxErrRate)
		failed = true
	}
	if *maxP99 > 0 {
		sort.Slice(all.lat, func(i, j int) bool { return all.lat[i] < all.lat[j] })
		if p99 := time.Duration(percentile(all.lat, 99)) * time.Microsecond; p99 > *maxP99 {
			fmt.Fprintf(os.Stderr, "nocload: FAIL: p99 %v exceeds %v\n", p99, *maxP99)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
