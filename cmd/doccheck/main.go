// Command doccheck fails when an exported symbol in the given packages
// lacks a doc comment. It is the teeth behind the repository's
// documentation contract: the CI doc-drift gate runs it over the
// packages whose exported APIs are load-bearing (internal/sim,
// internal/core), so a new exported function, type, method or
// constant cannot merge undocumented.
//
// Usage:
//
//	doccheck ./internal/sim ./internal/core
//
// Each argument is a package directory (one package per directory;
// _test.go files are ignored). Exit codes: 0 all exported symbols
// documented, 1 usage or parse error, 2 missing doc comments (listed
// one per line as file-less "pkg: Symbol" entries plus a count).
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck PKGDIR [PKGDIR...]")
		os.Exit(1)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(filepath.Clean(dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Printf("doccheck: %d exported symbols lack doc comments\n", len(missing))
		os.Exit(2)
	}
}

// checkDir parses one package directory and returns a "pkg: Symbol"
// entry for every exported symbol without a doc comment.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for name, pkg := range pkgs {
		// go/doc computes the association of comments to declarations —
		// the same view `go doc` renders — so "documented" here means
		// documented where a reader will actually find it.
		d := doc.New(pkg, dir, 0)
		add := func(symbol, docText string) {
			if strings.TrimSpace(docText) == "" {
				missing = append(missing, fmt.Sprintf("%s: %s", name, symbol))
			}
		}
		if strings.TrimSpace(d.Doc) == "" {
			missing = append(missing, fmt.Sprintf("%s: (package comment)", name))
		}
		// A const/var name is documented if its group decl has a doc
		// comment, or its own spec line does (the usual style for enum
		// members: a comment above each name inside one const block).
		// doc.Value.Doc only carries the group comment, so the specs are
		// inspected directly.
		values := func(vals []*doc.Value) {
			for _, v := range vals {
				groupDoc := strings.TrimSpace(v.Doc)
				for _, spec := range v.Decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					specDoc := groupDoc
					if specDoc == "" {
						specDoc = vs.Doc.Text()
					}
					if specDoc == "" && vs.Comment != nil {
						specDoc = vs.Comment.Text()
					}
					for _, n := range vs.Names {
						if ast.IsExported(n.Name) {
							add(n.Name, specDoc)
						}
					}
				}
			}
		}
		values(d.Consts)
		values(d.Vars)
		funcs := func(prefix string, fns []*doc.Func) {
			for _, f := range fns {
				if ast.IsExported(f.Name) {
					add(prefix+f.Name, f.Doc)
				}
			}
		}
		funcs("", d.Funcs)
		for _, t := range d.Types {
			if ast.IsExported(t.Name) {
				add(t.Name, t.Doc)
			}
			values(t.Consts)
			values(t.Vars)
			funcs("", t.Funcs)
			funcs(t.Name+".", t.Methods)
			fields(t, add)
		}
	}
	return missing, nil
}

// fields flags undocumented exported struct fields of exported struct
// types: for a result- or config-style API (sim.Config, core.Bounds)
// the fields are the contract, and an undocumented field is exactly the
// drift the gate exists to stop. Fields sharing a line with others
// (embedded groups like `X, Y int`) count as one entry per name.
func fields(t *doc.Type, add func(symbol, docText string)) {
	for _, spec := range t.Decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, f := range st.Fields.List {
			txt := f.Doc.Text()
			if txt == "" && f.Comment != nil {
				txt = f.Comment.Text() // trailing line comments count
			}
			for _, fname := range f.Names {
				if ast.IsExported(fname.Name) {
					add(t.Name+"."+fname.Name, txt)
				}
			}
		}
	}
}
