package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writePkg materialises one synthetic package in a temp dir.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckDirFlagsUndocumented(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// Documented works.
func Documented() {}

func Undocumented() {}

// T is documented.
type T struct {
	// A is documented.
	A int
	B int // trailing comments count as documentation
	C int
}

func (T) M() {}

const (
	// Good is documented per spec.
	Good = iota
	Bad
)
`)
	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"p: Undocumented": true,
		"p: T.C":          true,
		"p: T.M":          true,
		"p: Bad":          true,
	}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want exactly %v", missing, want)
	}
	for _, m := range missing {
		if !want[m] {
			t.Errorf("unexpected entry %q in %v", m, missing)
		}
	}
}

func TestCheckDirRequiresPackageComment(t *testing.T) {
	dir := writePkg(t, "package p\n")
	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "p: (package comment)" {
		t.Fatalf("missing = %v, want the package-comment entry", missing)
	}
}

func TestCheckDirCleanPackage(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// V is a documented group.
var V, W int

// F is documented.
func F() {}

func unexported() {}
`)
	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("clean package flagged: %v", missing)
	}
}
