// Command avbench regenerates Figure 5 of the paper: 100 random mappings
// of the autonomous-vehicle benchmark onto each of 26 mesh topologies
// (2x2 up to 10x10), reporting the percentage of mappings deemed fully
// schedulable by XLWX and by the proposed analysis with 2-flit (IBN2) and
// 100-flit (IBN100) buffers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wormnoc/internal/core"
	"wormnoc/internal/exp"
	"wormnoc/internal/mapopt"
	"wormnoc/internal/noc"
)

func main() {
	var (
		mappings = flag.Int("mappings", 100, "random mappings per topology")
		seed     = flag.Int64("seed", 1, "experiment seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		csvPath  = flag.String("csv", "", "also write CSV to this file")
		topos    = flag.String("topos", "", "comma list of WxH shapes (default: the 26 of Figure 5)")
		optimize = flag.Bool("optimize", false, "run the mapping optimizer per topology (IBN vs XLWX oracle) instead of random sampling")
		iters    = flag.Int("iters", 1500, "optimizer iteration budget (with -optimize)")
		verbose  = flag.Bool("v", false, "print task progress to stderr")
		stats    = flag.Bool("stats", false, "print analysis-engine telemetry after the run")
	)
	flag.Parse()

	if *optimize {
		runOptimize(*topos, *seed, *iters)
		return
	}

	runner := &exp.Runner{Workers: *workers}
	if *verbose {
		runner.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	cfg := exp.AVConfig{
		MappingsPerTopology: *mappings,
		Seed:                *seed,
		Runner:              runner,
	}
	if *topos != "" {
		for _, t := range strings.Split(*topos, ",") {
			parts := strings.Split(strings.TrimSpace(t), "x")
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad topology %q, want WxH", t))
			}
			w, err1 := strconv.Atoi(parts[0])
			h, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad topology %q", t))
			}
			cfg.Topologies = append(cfg.Topologies, [2]int{w, h})
		}
	}

	start := time.Now()
	res, err := exp.RunAV(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Table())
	if *stats {
		fmt.Print(res.Telemetry.String())
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
}

// runOptimize searches for a certified AV mapping on each topology with
// the simulated-annealing optimizer, once per oracle, and reports how
// many analysis evaluations each oracle needed to find a feasible
// mapping — the design-space-exploration payoff of the tighter analysis.
func runOptimize(topos string, seed int64, iters int) {
	shapes := [][2]int{{2, 2}, {3, 3}, {4, 4}, {5, 5}}
	if topos != "" {
		shapes = nil
		for _, t := range strings.Split(topos, ",") {
			parts := strings.Split(strings.TrimSpace(t), "x")
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad topology %q, want WxH", t))
			}
			w, err1 := strconv.Atoi(parts[0])
			h, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad topology %q", t))
			}
			shapes = append(shapes, [2]int{w, h})
		}
	}
	oracles := []struct {
		name string
		opt  core.Options
	}{
		{"XLWX", core.Options{Method: core.XLWX}},
		{"IBN2", core.Options{Method: core.IBN, BufDepth: 2}},
	}
	g := mapopt.AVGraph()
	fmt.Println("mapping optimisation of the AV benchmark (evaluations to first certified mapping)")
	fmt.Printf("%8s", "topology")
	for _, o := range oracles {
		fmt.Printf(" %16s", o.name)
	}
	fmt.Println()
	for _, wh := range shapes {
		topo, err := noc.NewMesh(wh[0], wh[1], noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8s", fmt.Sprintf("%dx%d", wh[0], wh[1]))
		for _, o := range oracles {
			res, err := mapopt.Optimize(g, topo, mapopt.Config{
				Analysis:          o.opt,
				Iterations:        iters,
				Seed:              seed,
				StopWhenScheduled: true,
			})
			if err != nil {
				fatal(err)
			}
			if res.Schedulable {
				fmt.Printf(" %16s", fmt.Sprintf("found@%d", res.Evaluations))
			} else {
				fmt.Printf(" %16s", fmt.Sprintf("none(%d)", res.Evaluations))
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avbench:", err)
	os.Exit(1)
}
