// Benchmarks regenerating every table and figure of the paper (at
// bench-friendly scale; the cmd/ tools run the full-size experiments) and
// ablation benches for the design choices called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem
package wormnoc_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/exp"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// BenchmarkTable2Didactic regenerates the four analytic columns of
// Table II (SB, XLWX, IBN b=10, IBN b=2) on the Section V example.
func BenchmarkTable2Didactic(b *testing.B) {
	cases := []struct {
		buf int
		opt core.Options
	}{
		{2, core.Options{Method: core.SB}},
		{2, core.Options{Method: core.XLWX}},
		{10, core.Options{Method: core.IBN}},
		{2, core.Options{Method: core.IBN}},
	}
	want := []noc.Cycles{336, 460, 396, 348}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for c, tc := range cases {
			res, err := core.Analyze(workload.Didactic(tc.buf), tc.opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.R(2) != want[c] {
				b.Fatalf("column %d: R(τ3) = %d, want %d", c, res.R(2), want[c])
			}
		}
	}
}

// BenchmarkTable2Simulation regenerates the simulation columns of
// Table II: one cycle-accurate run of the didactic MPB scenario per
// buffer depth (the full offset sweep is cmd/didactic's job).
func BenchmarkTable2Simulation(b *testing.B) {
	for _, buf := range []int{10, 2} {
		b.Run(fmt.Sprintf("buf=%d", buf), func(b *testing.B) {
			sys := workload.Didactic(buf)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sys, sim.Config{Duration: 20_000})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed[2] == 0 {
					b.Fatal("τ3 completed no packets")
				}
			}
		})
	}
}

// BenchmarkFig4a4x4 regenerates one x-axis point of Figure 4(a):
// 4x4 mesh, SB/XLWX/IBN2/IBN100 over synthetic flow sets.
func BenchmarkFig4a4x4(b *testing.B) {
	benchSweepPoint(b, 4, 4, 220)
}

// BenchmarkFig4b8x8 regenerates one x-axis point of Figure 4(b).
func BenchmarkFig4b8x8(b *testing.B) {
	benchSweepPoint(b, 8, 8, 360)
}

func benchSweepPoint(b *testing.B, w, h, flows int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSweep(exp.SweepConfig{
			Width: w, Height: h,
			FlowCounts:   []int{flows},
			SetsPerPoint: 5,
			Seed:         int64(i),
			Workers:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFig5AV regenerates a slice of Figure 5: random AV-benchmark
// mappings on a subset of the 26 topologies.
func BenchmarkFig5AV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAV(exp.AVConfig{
			Topologies:          [][2]int{{2, 2}, {4, 4}, {8, 8}},
			MappingsPerTopology: 10,
			Seed:                int64(i),
			Workers:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkBufferAblation regenerates the Section VI buffer-size study at
// bench scale (IBN at depths 2..100 plus XLWX over shared flow sets).
func BenchmarkBufferAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunBufferAblation(exp.BufferAblationConfig{
			Width: 4, Height: 4,
			FlowCounts:   []int{220},
			SetsPerPoint: 5,
			Seed:         int64(i),
			Workers:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if v := exp.CheckBufferMonotonicity(res); v != "" {
			b.Fatalf("buffer monotonicity violated: %s", v)
		}
	}
}

// BenchmarkAblationEq7 compares the clamped Equation 8 against the raw
// Equation 7 (DESIGN.md §5: the min() is what keeps IBN never looser than
// XLWX).
func BenchmarkAblationEq7(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"eq8", core.Options{Method: core.IBN, BufDepth: 100}},
		{"eq7", core.Options{Method: core.IBN, BufDepth: 100, Eq7: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 100, LinkLatency: 1})
			sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 200, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			sets := core.BuildSets(sys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeWithSets(sys, sets, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalysisScaling measures analysis cost versus flow-set size
// for each method (the memoised I^down recursion keeps XLWX/IBN close to
// SB).
func BenchmarkAnalysisScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		topo := noc.MustMesh(8, 8, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: n, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				sets := core.BuildSets(sys)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: m}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWhatIfScratch and BenchmarkWhatIfIncremental measure the
// edit/re-analyse loop of a what-if exploration on the platform of
// BenchmarkAnalysisScaling: every iteration applies one single-flow
// delta and recomputes the IBN bounds. Scratch pays a fresh engine
// (interference sets + cold fixed points) per edit; the incremental
// engine invalidates only the affected-flow frontier and warm-starts
// the rest. The two edits alternate so no iteration is a cacheable
// no-op. cmd/benchjson pairs the two by scenario and reports the
// speedup (the /v1/whatif endpoint is held to >=5x on the single-flow
// edits at n=400); "period-mid" edits a median-priority flow, whose
// dependent frontier is real, as the honest middle ground.
func BenchmarkWhatIfScratch(b *testing.B)     { benchWhatIf(b, false) }
func BenchmarkWhatIfIncremental(b *testing.B) { benchWhatIf(b, true) }

func benchWhatIf(b *testing.B, incremental bool) {
	for _, n := range []int{50, 200, 400} {
		topo := noc.MustMesh(8, 8, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: n, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		lowest, median := flowsByPriorityRank(sys)
		for _, sc := range []struct {
			name   string
			deltas [2]core.Delta
		}{
			{fmt.Sprintf("period/n=%d", n), periodToggle(sys, lowest)},
			{fmt.Sprintf("remap/n=%d", n), remapToggle(sys, lowest)},
			{fmt.Sprintf("period-mid/n=%d", n), periodToggle(sys, median)},
		} {
			b.Run(sc.name, func(b *testing.B) {
				if incremental {
					benchWhatIfIncremental(b, sys, sc.deltas)
				} else {
					benchWhatIfScratch(b, sys, sc.deltas)
				}
			})
		}
	}
}

func benchWhatIfScratch(b *testing.B, sys *traffic.System, deltas [2]core.Delta) {
	cur := sys
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := core.ApplyDelta(cur, deltas[i%2])
		if err != nil {
			b.Fatal(err)
		}
		cur = next
		if _, err := core.Analyze(cur, core.Options{Method: core.IBN}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWhatIfIncremental(b *testing.B, sys *traffic.System, deltas [2]core.Delta) {
	inc := core.NewIncremental(sys)
	ctx := context.Background()
	// Warm the engine through one full toggle: the first analysis is a
	// full run by design, and the loop below resumes on deltas[0].
	for _, d := range deltas {
		if err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Analyze(ctx, core.Options{Method: core.IBN}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inc.Apply(deltas[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Analyze(ctx, core.Options{Method: core.IBN}); err != nil {
			b.Fatal(err)
		}
	}
}

// flowsByPriorityRank returns the indices of the lowest-priority flow
// (the classic what-if subject: nothing depends on it) and the
// median-priority flow (roughly half the set can depend on it).
func flowsByPriorityRank(sys *traffic.System) (lowest, median int) {
	order := make([]int, sys.NumFlows())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return sys.Flow(order[a]).Priority < sys.Flow(order[b]).Priority
	})
	return order[len(order)-1], order[len(order)/2]
}

// periodToggle alternates flow k's period between its base value and
// base+64 (growing the period keeps the deadline valid either way).
func periodToggle(sys *traffic.System, k int) [2]core.Delta {
	base := sys.Flow(k).Period
	return [2]core.Delta{
		{Kind: core.DeltaPeriod, Flow: k, Cycles: base + 64},
		{Kind: core.DeltaPeriod, Flow: k, Cycles: base},
	}
}

// remapToggle alternates flow k's destination between its base node and
// the next node that is neither its source nor the base destination.
func remapToggle(sys *traffic.System, k int) [2]core.Delta {
	f := sys.Flow(k)
	nodes := sys.Topology().NumNodes()
	alt := f.Dst
	for {
		alt = (alt + 1) % noc.NodeID(nodes)
		if alt != f.Src && alt != f.Dst {
			break
		}
	}
	return [2]core.Delta{
		{Kind: core.DeltaMapping, Flow: k, Src: f.Src, Dst: alt},
		{Kind: core.DeltaMapping, Flow: k, Src: f.Src, Dst: f.Dst},
	}
}

// BenchmarkBuildSets measures interference-set construction.
func BenchmarkBuildSets(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo := noc.MustMesh(8, 8, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
			sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: n, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.BuildSets(sys)
			}
		})
	}
}

// staggeredOffsets spreads first releases uniformly over [0, window),
// deterministically in seed, to shape the benchmark load level.
func staggeredOffsets(n int, window noc.Cycles, seed int64) []noc.Cycles {
	rng := rand.New(rand.NewSource(seed))
	offs := make([]noc.Cycles, n)
	for i := range offs {
		offs[i] = noc.Cycles(rng.Int63n(int64(window)))
	}
	return offs
}

// BenchmarkSimulator measures simulator throughput (simulated cycles per
// wall-clock second) on a 4x4 mesh across load regimes. "saturated" is
// the historical scenario (all flows released at cycle 0, the mesh
// drains a synchronized burst); "moderate" staggers releases across the
// horizon; "low" also spreads the periods so packets mostly cross an
// idle mesh. The event-driven engine's cycle skipping and dirty-link
// arbitration pay off as load drops.
func BenchmarkSimulator(b *testing.B) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 32, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sparse, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows: 32, Seed: 9, PeriodMin: 40_000, PeriodMax: 400_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range []struct {
		name    string
		sys     *traffic.System
		horizon noc.Cycles
		offsets []noc.Cycles
	}{
		{"low", sparse, 400_000, staggeredOffsets(32, 400_000, 5)},
		{"moderate", sys, 100_000, staggeredOffsets(32, 100_000, 5)},
		{"saturated", sys, 100_000, nil},
	} {
		b.Run(sc.name, func(b *testing.B) {
			eng := sim.NewEngine(sc.sys)
			cfg := sim.Config{Duration: sc.horizon, Offsets: sc.offsets}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sc.horizon)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
